package translate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"logres/internal/algres"
	"logres/internal/instance"
	"logres/internal/parser"
	"logres/internal/types"
	"logres/internal/value"
)

func footballInstance(t *testing.T) *instance.Instance {
	t.Helper()
	m, err := parser.ParseModule(`
domains
  NAME = string;
  ROLE = integer;
classes
  PLAYER = (name: NAME, roles: {ROLE});
  TEAM = (team_name: NAME, base_players: <PLAYER>, substitutes: {PLAYER});
associations
  GAME = (h_team: TEAM, g_team: TEAM, score: integer);
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Schema.Validate(); err != nil {
		t.Fatal(err)
	}
	in := instance.New(m.Schema)
	p1, p2 := in.NewOID(), in.NewOID()
	in.AddToClass("player", p1, value.NewTuple(
		value.Field{Label: "name", Value: value.Str("rossi")},
		value.Field{Label: "roles", Value: value.NewSet(value.Int(9), value.Int(11))},
	))
	in.AddToClass("player", p2, value.NewTuple(
		value.Field{Label: "name", Value: value.Str("verdi")},
		value.Field{Label: "roles", Value: value.NewSet(value.Int(7))},
	))
	tm := in.NewOID()
	in.AddToClass("team", tm, value.NewTuple(
		value.Field{Label: "team_name", Value: value.Str("milan")},
		value.Field{Label: "base_players", Value: value.NewSequence(value.Ref(p1), value.Ref(p2))},
		value.Field{Label: "substitutes", Value: value.NewSet(value.Ref(p2))},
	))
	in.InsertTuple("game", value.NewTuple(
		value.Field{Label: "h_team", Value: value.Ref(tm)},
		value.Field{Label: "g_team", Value: value.Ref(tm)},
		value.Field{Label: "score", Value: value.Int(3)},
	))
	if err := in.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	return in
}

func TestNF2RoundTrip(t *testing.T) {
	in := footballInstance(t)
	db, err := ToNF2(in)
	if err != nil {
		t.Fatal(err)
	}
	players, _ := db.Get("player")
	if players.Len() != 2 || !players.HasAttr(OIDAttr) {
		t.Fatalf("player relation = %s", players)
	}
	back, err := FromNF2(db, in.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(in) {
		t.Fatalf("NF² round trip lost data:\n%s\nvs\n%s", in, back)
	}
}

func TestFlatRoundTrip(t *testing.T) {
	in := footballInstance(t)
	db, err := ToFlat(in)
	if err != nil {
		t.Fatal(err)
	}
	// The flat target has auxiliary relations for the collections.
	for _, name := range []string{"player$roles", "team$base_players", "team$substitutes"} {
		aux, ok := db.Get(name)
		if !ok {
			t.Fatalf("missing auxiliary relation %q (have %v)", name, db.Names())
		}
		if aux.Len() == 0 {
			t.Fatalf("auxiliary relation %q empty", name)
		}
	}
	// Main relations are flat: no constructed values.
	main, _ := db.Get("player")
	for _, tup := range main.Tuples() {
		for i := 0; i < tup.Len(); i++ {
			switch tup.Field(i).Value.Kind() {
			case value.KindSet, value.KindMultiset, value.KindSequence:
				t.Fatalf("flat relation holds a collection: %v", tup)
			}
		}
	}
	back, err := FromFlat(db, in.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(in) {
		t.Fatalf("flat round trip lost data:\n%s\nvs\n%s", in, back)
	}
}

func TestFlatCatalogShapes(t *testing.T) {
	in := footballInstance(t)
	cat, err := FlatCatalog(in.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if got := cat["player"]; len(got) != 2 || got[0] != OIDAttr || got[1] != "name" {
		t.Fatalf("player catalog = %v", got)
	}
	if got := cat["team$base_players"]; len(got) != 3 || got[1] != PosAttr {
		t.Fatalf("sequence aux catalog = %v", got)
	}
	if got := cat["game"]; got[0] != TIDAttr {
		t.Fatalf("association catalog = %v", got)
	}
}

// Queries over the NF² translation answer like the instance: count a
// player's roles by unnesting.
func TestAlgebraQueryOverTranslation(t *testing.T) {
	in := footballInstance(t)
	db, err := ToNF2(in)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := NF2Catalog(in.Schema())
	if err != nil {
		t.Fatal(err)
	}
	e := algres.GroupE{
		Input: algres.UnnestE{
			Input: algres.Scan{Name: "player"},
			Attr:  "roles",
			As:    "role",
		},
		By:   []string{"name"},
		Agg:  algres.AggCount,
		Over: "role",
		As:   "n",
	}
	opt := algres.Optimize(e, cat)
	out, err := opt.Eval(db)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{"rossi": 2, "verdi": 1}
	for _, tup := range out.Tuples() {
		n, _ := tup.Get("name")
		c, _ := tup.Get("n")
		if want[string(n.(value.Str))] != int64(c.(value.Int)) {
			t.Fatalf("role count wrong: %v", tup)
		}
	}
}

// Property: the flat round trip is lossless for random instances over a
// collection-heavy schema.
func TestFlatRoundTripProperty(t *testing.T) {
	m, err := parser.ParseModule(`
classes ITEM = (tag: string, vals: {integer}, hist: [integer], seq: <integer>);
associations LINKS = (src: ITEM, note: string);
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Schema.Validate(); err != nil {
		t.Fatal(err)
	}
	f := func(seed int64, nObj uint8) bool {
		r := rand.New(rand.NewSource(seed))
		in := instance.New(m.Schema)
		n := int(nObj%5) + 1
		var oids []value.OID
		for i := 0; i < n; i++ {
			oid := in.NewOID()
			oids = append(oids, oid)
			var vals, hist, seq []value.Value
			for j := 0; j < r.Intn(4); j++ {
				vals = append(vals, value.Int(int64(r.Intn(5))))
			}
			for j := 0; j < r.Intn(4); j++ {
				hist = append(hist, value.Int(int64(r.Intn(3))))
			}
			for j := 0; j < r.Intn(4); j++ {
				seq = append(seq, value.Int(int64(r.Intn(9))))
			}
			in.AddToClass("item", oid, value.NewTuple(
				value.Field{Label: "tag", Value: value.Str(string(rune('a' + i)))},
				value.Field{Label: "vals", Value: value.NewSet(vals...)},
				value.Field{Label: "hist", Value: value.NewMultiset(hist...)},
				value.Field{Label: "seq", Value: value.NewSequence(seq...)},
			))
		}
		for i := 0; i < r.Intn(4); i++ {
			in.InsertTuple("links", value.NewTuple(
				value.Field{Label: "src", Value: value.Ref(oids[r.Intn(len(oids))])},
				value.Field{Label: "note", Value: value.Str("n")},
			))
		}
		db, err := ToFlat(in)
		if err != nil {
			return false
		}
		back, err := FromFlat(db, m.Schema)
		if err != nil {
			return false
		}
		return back.Equal(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFromNF2Errors(t *testing.T) {
	in := footballInstance(t)
	db, err := ToNF2(in)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the oid column.
	players, _ := db.Get("player")
	bad := algres.NewRelation(players.Attrs()...)
	for _, tup := range players.Tuples() {
		bad.Insert(tup.With(OIDAttr, value.Str("oops")))
	}
	db.Set("player", bad)
	if _, err := FromNF2(db, in.Schema()); err == nil {
		t.Fatal("corrupt oid column accepted")
	}
	_ = types.Canon
}
