package parser

import (
	"strings"
	"testing"

	"logres/internal/ast"
	"logres/internal/types"
	"logres/internal/value"
)

func TestLexBasics(t *testing.T) {
	toks, err := lex(`foo Bar 12 3.5 "hi\n" <- ?- -> != <= >= { } [ ] < > . , ; : = + - * / _`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[len(toks)-1].kind != tokEOF {
		t.Fatal("missing EOF token")
	}
	kinds := []tokKind{tokIdent, tokIdent, tokInt, tokReal, tokString}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Fatalf("token %d kind = %v, want %v", i, toks[i].kind, k)
		}
	}
	if toks[4].text != "hi\n" {
		t.Fatalf("string token = %q", toks[4].text)
	}
}

func TestLexComments(t *testing.T) {
	toks, err := lex("a % line comment\nb // another\nc /* block\n */ d")
	if err != nil {
		t.Fatal(err)
	}
	var idents []string
	for _, tok := range toks {
		if tok.kind == tokIdent {
			idents = append(idents, tok.text)
		}
	}
	if strings.Join(idents, "") != "abcd" {
		t.Fatalf("idents = %v", idents)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, `"bad \q escape"`, "\"newline\nin string\"", "@"} {
		if _, err := lex(src); err == nil {
			t.Errorf("lex(%q) succeeded", src)
		}
	}
}

func TestLexNumberDotRule(t *testing.T) {
	toks, err := lex("p(1).")
	if err != nil {
		t.Fatal(err)
	}
	// expect ident ( int ) . EOF
	if toks[2].kind != tokInt || toks[2].text != "1" {
		t.Fatalf("got %v", toks)
	}
	if toks[4].text != "." {
		t.Fatalf("rule dot lost: %v", toks)
	}
}

func TestParseFootballModule(t *testing.T) {
	// Example 2.1 of the paper, in concrete syntax.
	src := `
module football.
domains
  NAME = string;
  ROLE = integer;
  DATE = string;
  SCORE = (home: integer, guest: integer);
classes
  PLAYER = (NAME, roles: {ROLE});
  TEAM = (team_name: NAME, base_players: <PLAYER>, substitutes: {PLAYER});
associations
  GAME = (h_team: TEAM, g_team: TEAM, DATE, SCORE);
end.
`
	m, err := ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "football" {
		t.Fatalf("name = %q", m.Name)
	}
	s := m.Schema
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	d, _ := s.Lookup("player")
	tup := d.RHS.(types.Tuple)
	if tup.Fields[0].Label != "name" {
		t.Fatalf("default label = %q", tup.Fields[0].Label)
	}
	if _, ok := tup.Fields[1].Type.(types.Set); !ok {
		t.Fatal("roles not a set")
	}
	team, _ := s.Lookup("team")
	tt := team.RHS.(types.Tuple)
	if _, ok := tt.Fields[1].Type.(types.Sequence); !ok {
		t.Fatal("base_players not a sequence")
	}
	game, _ := s.Lookup("game")
	gt := game.RHS.(types.Tuple)
	if gt.Fields[2].Label != "date" || gt.Fields[3].Label != "score" {
		t.Fatalf("default labels = %v", gt)
	}
}

func TestParseIsaDeclarations(t *testing.T) {
	src := `
classes
  PERSON = (name: string);
  STUDENT = (PERSON, school: string);
  STUDENT isa PERSON;
  EMPL = (emp: PERSON, manager: PERSON);
  EMPL emp isa PERSON;
`
	m, err := ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	edges := m.Schema.IsaEdges()
	if len(edges) != 2 {
		t.Fatalf("edges = %v", edges)
	}
	if edges[0] != (types.IsaEdge{Sub: "student", Label: "", Super: "person"}) {
		t.Fatalf("edge 0 = %v", edges[0])
	}
	if edges[1] != (types.IsaEdge{Sub: "empl", Label: "emp", Super: "person"}) {
		t.Fatalf("edge 1 = %v", edges[1])
	}
	if err := m.Schema.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseFunctions(t *testing.T) {
	src := `
functions
  DESC: PERSON -> {PERSON};
  CHILDREN: PERSON -> {(person: PERSON, bdate: string)};
  JUNIOR: -> {PERSON};
`
	m, err := ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := m.Schema.Lookup("desc")
	if !ok || d.Kind != types.DeclFunction {
		t.Fatal("desc not declared as function")
	}
	if d.Arg == nil || d.Result == nil {
		t.Fatal("desc signature incomplete")
	}
	j, _ := m.Schema.Lookup("junior")
	if j.Arg != nil {
		t.Fatal("junior should be nullary")
	}
	ch, _ := m.Schema.Lookup("children")
	if _, ok := ch.Result.(types.Tuple); !ok {
		t.Fatalf("children result = %v", ch.Result)
	}
}

func TestFunctionResultMustBeSet(t *testing.T) {
	if _, err := ParseModule("functions F: PERSON -> PERSON;"); err == nil {
		t.Fatal("non-set function result accepted")
	}
}

func TestParseRules(t *testing.T) {
	rules, err := ParseProgram(`
member(X, desc(Y)) <- parent(par: Y, chil: X).
member(X, desc(Y)) <- parent(par: Y, chil: Z), member(X, T), T = desc(Z).
ancestor(anc: X, des: Y) <- parent(par: X), Y = desc(X).
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("got %d rules", len(rules))
	}
	r := rules[0]
	if r.Head.Pred != "member" || len(r.Head.Args) != 2 {
		t.Fatalf("head = %v", r.Head)
	}
	if _, ok := r.Head.Args[1].Term.(ast.FuncApp); !ok {
		t.Fatalf("desc(Y) not a function application: %T", r.Head.Args[1].Term)
	}
	if rules[1].Body[2].Pred != "=" {
		t.Fatalf("equality literal = %v", rules[1].Body[2])
	}
}

func TestParseSelfAndTupleVariables(t *testing.T) {
	rules, err := ParseProgram(`
pair(p_name: X, s_name: X) <- professor(self: X1, name: X), student(self: Y1, name: X), advises(Xp, Y1).
school_info(S) <- school(dean(self: X)), professor(self: X, name: S).
`)
	if err != nil {
		t.Fatal(err)
	}
	b0 := rules[0].Body[0]
	if b0.Args[0].Label != ast.SelfLabel {
		t.Fatalf("self label = %q", b0.Args[0].Label)
	}
	// Nested-reference sugar: dean(self: X) becomes a labelled tuple term.
	b1 := rules[1].Body[0]
	if b1.Args[0].Label != "dean" {
		t.Fatalf("nested reference label = %q", b1.Args[0].Label)
	}
	if _, ok := b1.Args[0].Term.(ast.TupleTerm); !ok {
		t.Fatalf("nested reference term = %T", b1.Args[0].Term)
	}
}

func TestParseNegationAndDenials(t *testing.T) {
	rules, err := ParseProgram(`
not p(d1: X) <- p(d1: X), even(X).
<- married(X), divorced(X).
q(X) <- r(X), not s(X).
`)
	if err != nil {
		t.Fatal(err)
	}
	if !rules[0].Head.Negated {
		t.Fatal("deletion head not negated")
	}
	if !rules[1].IsDenial() {
		t.Fatal("denial not recognized")
	}
	if !rules[2].Body[1].Negated {
		t.Fatal("body negation lost")
	}
}

func TestParseFactsAndConstants(t *testing.T) {
	rules, err := ParseProgram(`
italian(name: "Sara").
italian(name: luca).
p(x: 3, y: -4, z: 2.5, b: true, n: null).
`)
	if err != nil {
		t.Fatal(err)
	}
	if !rules[0].IsFact() {
		t.Fatal("fact not recognized")
	}
	if c := rules[1].Head.Args[0].Term.(ast.Const); c.Val != value.Str("luca") {
		t.Fatalf("atom constant = %v", c.Val)
	}
	args := rules[2].Head.Args
	if args[1].Term.(ast.Const).Val != value.Int(-4) {
		t.Fatalf("negative int = %v", args[1].Term)
	}
	if args[2].Term.(ast.Const).Val != value.Real(2.5) {
		t.Fatalf("real = %v", args[2].Term)
	}
	if args[3].Term.(ast.Const).Val != value.Bool(true) {
		t.Fatalf("bool = %v", args[3].Term)
	}
	if args[4].Term.(ast.Const).Val.Kind() != value.KindNull {
		t.Fatalf("null = %v", args[4].Term)
	}
}

func TestParseCollectionLiteralsAndArith(t *testing.T) {
	rules, err := ParseProgram(`
power(set: X) <- X = {}.
p(X) <- q(Y), X = Y + 1 * 2.
r(X) <- X = <1, 2, 3>, s([1, 1], {2}).
m(X) <- n(Y), X = Y mod 3.
`)
	if err != nil {
		t.Fatal(err)
	}
	eq := rules[0].Body[0]
	if st, ok := eq.Args[1].Term.(ast.SetTerm); !ok || len(st.Elems) != 0 {
		t.Fatalf("empty set literal = %v", eq.Args[1].Term)
	}
	// Precedence: Y + (1*2).
	expr := rules[1].Body[1].Args[1].Term.(ast.BinExpr)
	if expr.Op != "+" {
		t.Fatalf("top op = %q", expr.Op)
	}
	if inner, ok := expr.R.(ast.BinExpr); !ok || inner.Op != "*" {
		t.Fatalf("precedence wrong: %v", expr)
	}
	if sq, ok := rules[2].Body[0].Args[1].Term.(ast.SeqTerm); !ok || len(sq.Elems) != 3 {
		t.Fatalf("sequence literal = %v", rules[2].Body[0].Args[1].Term)
	}
	sArgs := rules[2].Body[1].Args
	if _, ok := sArgs[0].Term.(ast.MultisetTerm); !ok {
		t.Fatalf("multiset literal = %T", sArgs[0].Term)
	}
	if mod := rules[3].Body[1].Args[1].Term.(ast.BinExpr); mod.Op != "mod" {
		t.Fatalf("mod op = %v", mod)
	}
}

func TestParseComparisonVsSequence(t *testing.T) {
	rules, err := ParseProgram(`
p(X) <- q(X), X < 10, X >= 2.
r(S) <- S = <1, 2>.
`)
	if err != nil {
		t.Fatal(err)
	}
	if rules[0].Body[1].Pred != "<" || rules[0].Body[2].Pred != ">=" {
		t.Fatalf("comparisons = %v", rules[0].Body)
	}
	if _, ok := rules[1].Body[0].Args[1].Term.(ast.SeqTerm); !ok {
		t.Fatal("sequence literal after = not parsed")
	}
}

func TestParseTupleTermsAndWildcard(t *testing.T) {
	rules, err := ParseProgram(`
member(T, children(X)) <- parent(father: X, child: Y, bdate: Z), T = (person: Y, bdate: Z).
p(X) <- q(X, _).
`)
	if err != nil {
		t.Fatal(err)
	}
	eq := rules[0].Body[1]
	if tt, ok := eq.Args[1].Term.(ast.TupleTerm); !ok || len(tt.Args) != 2 || tt.Args[0].Label != "person" {
		t.Fatalf("tuple term = %v", eq.Args[1].Term)
	}
	if _, ok := rules[1].Body[0].Args[1].Term.(ast.Wildcard); !ok {
		t.Fatal("wildcard lost")
	}
}

func TestParseGoalSection(t *testing.T) {
	m, err := ParseModule(`
mode radi.
rules
  p(X) <- q(X).
goal
  ?- p(X), X > 3.
end.
`)
	if err != nil {
		t.Fatal(err)
	}
	if !m.HasMod || m.Mode != ast.RADI {
		t.Fatalf("mode = %v", m.Mode)
	}
	if len(m.Goal) != 2 || m.Goal[0].Pred != "p" {
		t.Fatalf("goal = %v", m.Goal)
	}
}

func TestParseGoalStandalone(t *testing.T) {
	g, err := ParseGoal("?- ancestor(anc: X), X != 3.")
	if err != nil {
		t.Fatal(err)
	}
	if len(g) != 2 {
		t.Fatalf("goal = %v", g)
	}
	if _, err := ParseGoal("p(X). trailing"); err == nil {
		t.Fatal("trailing input accepted")
	}
}

func TestParseModeErrors(t *testing.T) {
	if _, err := ParseModule("mode bogus. end."); err == nil {
		t.Fatal("bogus mode accepted")
	}
}

func TestParseErrorsHavePositions(t *testing.T) {
	_, err := ParseProgram("p(X <- q(X).")
	if err == nil {
		t.Fatal("bad rule accepted")
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type = %T", err)
	}
	if perr.Line != 1 || perr.Col == 0 {
		t.Fatalf("position = %d:%d", perr.Line, perr.Col)
	}
	if !strings.Contains(err.Error(), "parse error at") {
		t.Fatalf("message = %q", err)
	}
}

func TestParseRejectsJunk(t *testing.T) {
	bad := []string{
		"p(X) q(X).",    // missing arrow
		"<- .",          // empty denial
		"p(X) <- X.",    // bare variable literal
		"domains X = ;", // missing type
		"p(1) <- q(1)",  // missing dot
		"end junk",      // module end then junk handled at module level
	}
	for _, src := range bad {
		if _, err := ParseProgram(src); err == nil {
			if _, err2 := ParseModule(src); err2 == nil {
				t.Errorf("junk accepted: %q", src)
			}
		}
	}
}

func TestRoundTripStrings(t *testing.T) {
	rules, err := ParseProgram(`not p(a: X, self: Y) <- q(X), X >= 2, r(s: (t: X)).`)
	if err != nil {
		t.Fatal(err)
	}
	out := rules[0].String()
	for _, want := range []string{"not p", "self: Y", ">=", "(t: X)"} {
		if !strings.Contains(out, want) {
			t.Errorf("round trip missing %q: %s", want, out)
		}
	}
	reparsed, err := ParseProgram(out)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, out)
	}
	if reparsed[0].String() != out {
		t.Fatalf("not a fixpoint:\n%s\n%s", out, reparsed[0].String())
	}
}

func TestParseSemanticsDeclaration(t *testing.T) {
	m, err := ParseModule(`
module m.
mode radv.
semantics noninflationary.
end.
`)
	if err != nil {
		t.Fatal(err)
	}
	if !m.NonInflationary {
		t.Fatal("semantics declaration lost")
	}
	m2, err := ParseModule(`semantics inflationary. end.`)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NonInflationary {
		t.Fatal("inflationary read as noninflationary")
	}
	if _, err := ParseModule(`semantics sideways. end.`); err == nil {
		t.Fatal("bogus semantics accepted")
	}
}

func TestParseStringEscapes(t *testing.T) {
	rules, err := ParseProgram(`p(x: "a\tb\\c\"d").`)
	if err != nil {
		t.Fatal(err)
	}
	c := rules[0].Head.Args[0].Term.(ast.Const)
	if c.Val != value.Str("a\tb\\c\"d") {
		t.Fatalf("escapes = %q", c.Val)
	}
}

func TestParseNegativeRealAndExpr(t *testing.T) {
	rules, err := ParseProgram(`p(x: -2.5). q(X) <- r(Y), X = -(Y).`)
	if err != nil {
		t.Fatal(err)
	}
	if rules[0].Head.Args[0].Term.(ast.Const).Val != value.Real(-2.5) {
		t.Fatalf("negative real = %v", rules[0].Head.Args[0].Term)
	}
	// -(Y) parses as 0 - Y.
	be, ok := rules[1].Body[1].Args[1].Term.(ast.BinExpr)
	if !ok || be.Op != "-" {
		t.Fatalf("unary minus = %v", rules[1].Body[1])
	}
}

func TestParseEmptyArgListAndNullaryGoal(t *testing.T) {
	rules, err := ParseProgram(`p() <- q().`)
	if err != nil {
		t.Fatal(err)
	}
	if rules[0].Head.Pred != "p" || len(rules[0].Head.Args) != 0 {
		t.Fatalf("empty-paren head = %v", rules[0].Head)
	}
	g, err := ParseGoal(`?- p().`)
	if err != nil || len(g) != 1 {
		t.Fatalf("nullary goal = %v (%v)", g, err)
	}
}

func TestParseMultipleSectionsRepeat(t *testing.T) {
	m, err := ParseModule(`
domains A = integer;
rules
  p(x: 1).
domains B = string;
associations P = (x: integer);
rules
  p(x: 2).
end.
`)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Schema.IsDomain("a") || !m.Schema.IsDomain("b") {
		t.Fatal("repeated sections lost declarations")
	}
	if len(m.Rules) != 2 {
		t.Fatalf("rules = %d", len(m.Rules))
	}
}

func TestParseModeAfterModuleOnly(t *testing.T) {
	// Mode must follow the module header; elsewhere it reads as a section
	// error.
	if _, err := ParseModule("rules p(x: 1). mode ridv. end."); err == nil {
		// 'mode' after rules is treated as a section keyword: the rules
		// loop stops, then parseModule sees 'mode' and errors.
		t.Fatal("misplaced mode accepted")
	}
}
