package parser

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"logres/internal/ast"
	"logres/internal/types"
	"logres/internal/value"
)

// ParseModule parses a complete LOGRES module:
//
//	[module NAME.] [mode MODE.]
//	[domains …] [classes …] [associations …] [functions …]
//	[rules …] [goal …] [end.]
//
// Sections may appear in any order and repeat.
func ParseModule(src string) (*ast.Module, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	m, err := p.parseModule()
	if err != nil {
		return nil, err
	}
	return m, nil
}

// ParseProgram parses a bare sequence of rules (no sections).
func ParseProgram(src string) ([]*ast.Rule, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var rules []*ast.Rule
	for !p.at(tokEOF) {
		r, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		rules = append(rules, r)
	}
	return rules, nil
}

// ParseGoal parses a conjunctive goal `?- l1, …, ln.` (the `?-` is
// optional).
func ParseGoal(src string) ([]ast.Literal, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	g, err := p.parseGoal()
	if err != nil {
		return nil, err
	}
	if !p.at(tokEOF) {
		return nil, p.errf("trailing input after goal: %s", p.peek())
	}
	return g, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token       { return p.toks[p.i] }
func (p *parser) next() token       { t := p.toks[p.i]; p.i++; return t }
func (p *parser) at(k tokKind) bool { return p.toks[p.i].kind == k }

func (p *parser) atPunct(s string) bool {
	t := p.peek()
	return t.kind == tokPunct && t.text == s
}

func (p *parser) atKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) acceptPunct(s string) bool {
	if p.atPunct(s) {
		p.i++
		return true
	}
	return false
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.atKeyword(kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errf("expected %q, got %s", s, p.peek())
	}
	return nil
}

func (p *parser) expectIdent() (token, error) {
	if !p.at(tokIdent) {
		return token{}, p.errf("expected identifier, got %s", p.peek())
	}
	return p.next(), nil
}

func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

var sectionKeywords = map[string]bool{
	"domains": true, "classes": true, "associations": true,
	"functions": true, "rules": true, "goal": true, "end": true,
	"module": true, "mode": true, "semantics": true,
}

func (p *parser) parseModule() (*ast.Module, error) {
	m := &ast.Module{Schema: types.NewSchema()}
	if p.acceptKeyword("module") {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		m.Name = types.Canon(name.text)
		if err := p.expectPunct("."); err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("mode") {
		mode, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		md, ok := ast.ParseMode(mode.text)
		if !ok {
			return nil, p.errf("unknown mode %q", mode.text)
		}
		m.Mode, m.HasMod = md, true
		if err := p.expectPunct("."); err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("semantics") {
		sem, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		switch strings.ToLower(sem.text) {
		case "inflationary":
		case "noninflationary":
			m.NonInflationary = true
		default:
			return nil, p.errf("unknown semantics %q (inflationary or noninflationary)", sem.text)
		}
		if err := p.expectPunct("."); err != nil {
			return nil, err
		}
	}
	for !p.at(tokEOF) {
		switch {
		case p.acceptKeyword("domains"):
			if err := p.parseDecls(m.Schema, types.DeclDomain); err != nil {
				return nil, err
			}
		case p.acceptKeyword("classes"):
			if err := p.parseDecls(m.Schema, types.DeclClass); err != nil {
				return nil, err
			}
		case p.acceptKeyword("associations"):
			if err := p.parseDecls(m.Schema, types.DeclAssociation); err != nil {
				return nil, err
			}
		case p.acceptKeyword("functions"):
			if err := p.parseFunctions(m.Schema); err != nil {
				return nil, err
			}
		case p.acceptKeyword("rules"):
			for !p.at(tokEOF) && !p.atSectionStart() {
				r, err := p.parseRule()
				if err != nil {
					return nil, err
				}
				m.Rules = append(m.Rules, r)
			}
		case p.acceptKeyword("goal"):
			g, err := p.parseGoal()
			if err != nil {
				return nil, err
			}
			m.Goal = append(m.Goal, g...)
		case p.acceptKeyword("end"):
			p.acceptPunct(".")
			if !p.at(tokEOF) {
				return nil, p.errf("input after end: %s", p.peek())
			}
			return m, nil
		default:
			return nil, p.errf("expected a section keyword, got %s", p.peek())
		}
	}
	return m, nil
}

func (p *parser) atSectionStart() bool {
	t := p.peek()
	return t.kind == tokIdent && sectionKeywords[strings.ToLower(t.text)]
}

// parseDecls parses `NAME = type ;`* and, inside the classes section, isa
// declarations `SUB [label] isa SUPER ;`.
func (p *parser) parseDecls(s *types.Schema, kind types.DeclKind) error {
	for p.at(tokIdent) && !p.atSectionStart() {
		name := p.next()
		// isa declaration?
		if kind == types.DeclClass {
			if p.atKeyword("isa") {
				p.next()
				super, err := p.expectIdent()
				if err != nil {
					return err
				}
				if err := s.AddIsa(name.text, "", super.text); err != nil {
					return err
				}
				if err := p.expectPunct(";"); err != nil {
					return err
				}
				continue
			}
			if p.at(tokIdent) { // labelled isa: SUB label isa SUPER
				label := p.next()
				if !p.acceptKeyword("isa") {
					return p.errf("expected 'isa' after %q %q", name.text, label.text)
				}
				super, err := p.expectIdent()
				if err != nil {
					return err
				}
				if err := s.AddIsa(name.text, label.text, super.text); err != nil {
					return err
				}
				if err := p.expectPunct(";"); err != nil {
					return err
				}
				continue
			}
		}
		if err := p.expectPunct("="); err != nil {
			return err
		}
		t, err := p.parseType()
		if err != nil {
			return err
		}
		if err := p.expectPunct(";"); err != nil {
			return err
		}
		switch kind {
		case types.DeclDomain:
			err = s.AddDomain(name.text, t)
		case types.DeclClass:
			err = s.AddClass(name.text, t)
		case types.DeclAssociation:
			err = s.AddAssociation(name.text, t)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// parseFunctions parses `NAME : [type] -> type ;`* where the result type
// must be a set type {T}.
func (p *parser) parseFunctions(s *types.Schema) error {
	for p.at(tokIdent) && !p.atSectionStart() {
		name := p.next()
		if err := p.expectPunct(":"); err != nil {
			return err
		}
		var arg types.Type
		if !p.atPunct("->") {
			t, err := p.parseType()
			if err != nil {
				return err
			}
			arg = t
		}
		if err := p.expectPunct("->"); err != nil {
			return err
		}
		res, err := p.parseType()
		if err != nil {
			return err
		}
		set, ok := res.(types.Set)
		if !ok {
			return p.errf("function %q result must be a set type, got %s", name.text, res)
		}
		if err := s.AddFunction(name.text, arg, set.Elem); err != nil {
			return err
		}
		if err := p.expectPunct(";"); err != nil {
			return err
		}
	}
	return nil
}

var elementaryTypes = map[string]types.Type{
	"integer": types.Int, "int": types.Int,
	"string": types.String, "str": types.String,
	"real": types.Real, "float": types.Real,
	"boolean": types.Bool, "bool": types.Bool,
}

func (p *parser) parseType() (types.Type, error) {
	switch {
	case p.at(tokIdent):
		name := p.next()
		if t, ok := elementaryTypes[strings.ToLower(name.text)]; ok {
			return t, nil
		}
		return types.Named{Name: name.text}, nil
	case p.acceptPunct("("):
		var fields []types.Field
		for {
			f, err := p.parseTypeComponent()
			if err != nil {
				return nil, err
			}
			fields = append(fields, f)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return types.Tuple{Fields: fields}, nil
	case p.acceptPunct("{"):
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("}"); err != nil {
			return nil, err
		}
		return types.Set{Elem: elem}, nil
	case p.acceptPunct("["):
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		return types.Multiset{Elem: elem}, nil
	case p.acceptPunct("<"):
		elem, err := p.parseType()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(">"); err != nil {
			return nil, err
		}
		return types.Sequence{Elem: elem}, nil
	}
	return nil, p.errf("expected a type, got %s", p.peek())
}

// parseTypeComponent parses `label: type` or a bare type whose default
// label is the lower-cased type name.
func (p *parser) parseTypeComponent() (types.Field, error) {
	if p.at(tokIdent) && p.toks[p.i+1].kind == tokPunct && p.toks[p.i+1].text == ":" {
		label := p.next()
		p.next() // ':'
		t, err := p.parseType()
		if err != nil {
			return types.Field{}, err
		}
		return types.Field{Label: types.Canon(label.text), Type: t}, nil
	}
	t, err := p.parseType()
	if err != nil {
		return types.Field{}, err
	}
	switch x := t.(type) {
	case types.Named:
		return types.Field{Label: types.Canon(x.Name), Type: t}, nil
	case types.Elementary:
		return types.Field{Label: types.Canon(x.String()), Type: t}, nil
	}
	return types.Field{}, p.errf("tuple component %s needs a label", t)
}

// parseRule parses one rule, fact, or denial, terminated by '.'.
func (p *parser) parseRule() (*ast.Rule, error) {
	r := &ast.Rule{}
	if !p.atPunct("<-") {
		head, err := p.parseHeadLiteral()
		if err != nil {
			return nil, err
		}
		r.Head = &head
	}
	if p.acceptPunct("<-") {
		body, err := p.parseBody()
		if err != nil {
			return nil, err
		}
		r.Body = body
	} else if r.Head == nil {
		return nil, p.errf("rule has neither head nor body")
	}
	if err := p.expectPunct("."); err != nil {
		return nil, err
	}
	return r, nil
}

func (p *parser) parseGoal() ([]ast.Literal, error) {
	p.acceptPunct("?-")
	body, err := p.parseBody()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("."); err != nil {
		return nil, err
	}
	return body, nil
}

func (p *parser) parseHeadLiteral() (ast.Literal, error) {
	negated := p.acceptKeyword("not")
	if !p.at(tokIdent) {
		return ast.Literal{}, p.errf("expected head predicate, got %s", p.peek())
	}
	lit, err := p.parsePredLiteral()
	if err != nil {
		return ast.Literal{}, err
	}
	lit.Negated = negated
	return lit, nil
}

func (p *parser) parseBody() ([]ast.Literal, error) {
	var out []ast.Literal
	for {
		lit, err := p.parseLiteral()
		if err != nil {
			return nil, err
		}
		out = append(out, lit)
		if !p.acceptPunct(",") {
			break
		}
	}
	return out, nil
}

var relops = map[string]string{
	"=": "=", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
}

func (p *parser) parseLiteral() (ast.Literal, error) {
	negated := p.acceptKeyword("not")
	// Predicate literal: IDENT followed by '(' (or a bare nullary
	// predicate followed by ',' '.' or a relational operator context).
	if p.at(tokIdent) {
		nextTok := p.toks[p.i+1]
		if nextTok.kind == tokPunct && nextTok.text == "(" {
			lit, err := p.parsePredLiteral()
			if err != nil {
				return ast.Literal{}, err
			}
			lit.Negated = negated
			return lit, nil
		}
	}
	// Otherwise: comparison literal `term relop term`.
	left, err := p.parseTerm()
	if err != nil {
		return ast.Literal{}, err
	}
	t := p.peek()
	if t.kind == tokPunct {
		if op, ok := relops[t.text]; ok {
			p.next()
			right, err := p.parseTerm()
			if err != nil {
				return ast.Literal{}, err
			}
			return ast.Literal{
				Negated: negated,
				Pred:    op,
				Args:    []ast.Arg{{Term: left}, {Term: right}},
			}, nil
		}
	}
	// A bare variable cannot be a literal; a bare identifier is a nullary
	// predicate reference.
	if v, ok := left.(ast.Var); ok {
		return ast.Literal{}, p.errf("variable %s is not a literal", v.Name)
	}
	if c, ok := left.(ast.Const); ok {
		if s, isStr := c.Val.(value.Str); isStr {
			return ast.Literal{Negated: negated, Pred: types.Canon(string(s))}, nil
		}
	}
	return ast.Literal{}, p.errf("expected a literal")
}

// parsePredLiteral parses IDENT '(' args ')' (or bare IDENT).
func (p *parser) parsePredLiteral() (ast.Literal, error) {
	name, err := p.expectIdent()
	if err != nil {
		return ast.Literal{}, err
	}
	lit := ast.Literal{Pred: types.Canon(name.text)}
	if !p.acceptPunct("(") {
		return lit, nil
	}
	if p.acceptPunct(")") {
		return lit, nil
	}
	for {
		arg, err := p.parseArg()
		if err != nil {
			return ast.Literal{}, err
		}
		lit.Args = append(lit.Args, arg)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return ast.Literal{}, err
	}
	return lit, nil
}

// parseArg parses one argument of a predicate literal or tuple term:
//
//	label: term        labelled argument ('self: X' binds an oid variable)
//	label(args)        nested-reference sugar when args contain a label
//	term               positional argument / tuple variable / function app
func (p *parser) parseArg() (ast.Arg, error) {
	if p.at(tokIdent) {
		nextTok := p.toks[p.i+1]
		if nextTok.kind == tokPunct && nextTok.text == ":" {
			label := p.next()
			p.next() // ':'
			t, err := p.parseTerm()
			if err != nil {
				return ast.Arg{}, err
			}
			return ast.Arg{Label: types.Canon(label.text), Term: t}, nil
		}
		if nextTok.kind == tokPunct && nextTok.text == "(" {
			// Could be nested-reference sugar or a function application.
			save := p.i
			name := p.next()
			p.next() // '('
			var args []ast.Arg
			ok := true
			if !p.atPunct(")") {
				for {
					a, err := p.parseArg()
					if err != nil {
						ok = false
						break
					}
					args = append(args, a)
					if p.acceptPunct(",") {
						continue
					}
					break
				}
			}
			if ok && p.acceptPunct(")") {
				labelled := false
				for _, a := range args {
					if a.Label != "" {
						labelled = true
						break
					}
				}
				if labelled {
					// Nested reference: label(args) ≡ label: (args).
					return ast.Arg{
						Label: types.Canon(name.text),
						Term:  ast.TupleTerm{Args: args},
					}, nil
				}
			}
			// Function application (or a parse that must be redone as a
			// plain term, e.g. arithmetic on the result).
			p.i = save
			t, err := p.parseTerm()
			if err != nil {
				return ast.Arg{}, err
			}
			return ast.Arg{Term: t}, nil
		}
	}
	t, err := p.parseTerm()
	if err != nil {
		return ast.Arg{}, err
	}
	return ast.Arg{Term: t}, nil
}

// Term grammar with the usual precedence:
//
//	term    ::= mulExpr (('+' | '-') mulExpr)*
//	mulExpr ::= primary (('*' | '/' | 'mod') primary)*
func (p *parser) parseTerm() (ast.Term, error) {
	left, err := p.parseMulExpr()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokPunct && (t.text == "+" || t.text == "-") {
			p.next()
			right, err := p.parseMulExpr()
			if err != nil {
				return nil, err
			}
			left = ast.BinExpr{Op: t.text, L: left, R: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseMulExpr() (ast.Term, error) {
	left, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		switch {
		case t.kind == tokPunct && (t.text == "*" || t.text == "/"):
			p.next()
		case t.kind == tokIdent && strings.EqualFold(t.text, "mod"):
			p.next()
			t.text = "mod"
		default:
			return left, nil
		}
		right, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		left = ast.BinExpr{Op: t.text, L: left, R: right}
	}
}

func (p *parser) parsePrimary() (ast.Term, error) {
	t := p.peek()
	switch {
	case t.kind == tokInt:
		p.next()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.text)
		}
		return ast.Const{Val: value.Int(n)}, nil
	case t.kind == tokReal:
		p.next()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.errf("bad real %q", t.text)
		}
		return ast.Const{Val: value.Real(f)}, nil
	case t.kind == tokString:
		p.next()
		return ast.Const{Val: value.Str(t.text)}, nil
	case t.kind == tokPunct && t.text == "-":
		p.next()
		inner, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		switch c := inner.(type) {
		case ast.Const:
			switch v := c.Val.(type) {
			case value.Int:
				return ast.Const{Val: value.Int(-v)}, nil
			case value.Real:
				return ast.Const{Val: value.Real(-v)}, nil
			}
		}
		return ast.BinExpr{Op: "-", L: ast.Const{Val: value.Int(0)}, R: inner}, nil
	case t.kind == tokPunct && t.text == "_":
		p.next()
		return ast.Wildcard{}, nil
	case t.kind == tokIdent:
		name := p.next()
		lower := strings.ToLower(name.text)
		if lower == "true" {
			return ast.Const{Val: value.Bool(true)}, nil
		}
		if lower == "false" {
			return ast.Const{Val: value.Bool(false)}, nil
		}
		if lower == "null" || lower == "nil" {
			return ast.Const{Val: value.Null{}}, nil
		}
		if p.atPunct("(") {
			// Function application.
			p.next()
			var args []ast.Term
			if !p.atPunct(")") {
				for {
					a, err := p.parseTerm()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.acceptPunct(",") {
						continue
					}
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return ast.FuncApp{Name: types.Canon(name.text), Args: args}, nil
		}
		if isVariable(name.text) {
			return ast.Var{Name: name.text}, nil
		}
		// Lower-case identifier: a symbolic (string) constant. Nullary
		// function references are written with parentheses: junior().
		return ast.Const{Val: value.Str(name.text)}, nil
	case t.kind == tokPunct && t.text == "(":
		p.next()
		// Tuple term or parenthesized expression.
		var args []ast.Arg
		for {
			a, err := p.parseArg()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.acceptPunct(",") {
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if len(args) == 1 && args[0].Label == "" {
			return args[0].Term, nil // grouping
		}
		return ast.TupleTerm{Args: args}, nil
	case t.kind == tokPunct && t.text == "{":
		p.next()
		elems, err := p.parseTermList("}")
		if err != nil {
			return nil, err
		}
		return ast.SetTerm{Elems: elems}, nil
	case t.kind == tokPunct && t.text == "[":
		p.next()
		elems, err := p.parseTermList("]")
		if err != nil {
			return nil, err
		}
		return ast.MultisetTerm{Elems: elems}, nil
	case t.kind == tokPunct && t.text == "<":
		p.next()
		elems, err := p.parseTermList(">")
		if err != nil {
			return nil, err
		}
		return ast.SeqTerm{Elems: elems}, nil
	}
	return nil, p.errf("expected a term, got %s", t)
}

func (p *parser) parseTermList(close string) ([]ast.Term, error) {
	var elems []ast.Term
	if p.acceptPunct(close) {
		return nil, nil
	}
	for {
		e, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		elems = append(elems, e)
		if p.acceptPunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(close); err != nil {
		return nil, err
	}
	return elems, nil
}

// isVariable reports whether an identifier names a variable: LOGRES
// follows the Datalog convention that variables start with an upper-case
// letter.
func isVariable(name string) bool {
	r := rune(name[0])
	return unicode.IsUpper(r)
}
