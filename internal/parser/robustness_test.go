package parser

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Robustness: the parser must never panic, whatever the input — random
// byte soup, truncations and mutations of valid programs all return
// either a module or an error.

var corpus = []string{
	`
module football.
mode ridv.
semantics noninflationary.
domains NAME = string;
classes
  PLAYER = (NAME, roles: {integer});
  STUDENT isa PERSON;
associations GAME = (h: PLAYER, d: string);
functions DESC: NAME -> {NAME};
rules
  member(X, desc(Y)) <- parent(par: Y, chil: X), X != 3, not q(X).
  not p(Y) <- p(Y), Y = (a: X, b: W).
goal
  ?- game(h: X), X >= 2.
end.
`,
	`p(a: {1, 2}, b: [3], c: <4, 5>) <- q(X), X = Y + 1 * 2 - 3 / 4 mod 5.`,
	`<- married(X), divorced(X).`,
}

func safeParse(t *testing.T, src string) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("parser panicked on %q: %v", src, r)
		}
	}()
	_, _ = ParseModule(src)
	_, _ = ParseProgram(src)
	_, _ = ParseGoal(src)
}

func TestParserNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(data []byte) bool {
		safeParse(t, string(data))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParserNeverPanicsOnMutations(t *testing.T) {
	alphabet := []byte(`abcXYZ0159 .,;:(){}[]<>"=+-*/_%?-<-`)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := []byte(corpus[r.Intn(len(corpus))])
		// Apply a handful of random mutations.
		for i := 0; i < 1+r.Intn(6); i++ {
			if len(src) == 0 {
				break
			}
			pos := r.Intn(len(src))
			switch r.Intn(3) {
			case 0: // flip
				src[pos] = alphabet[r.Intn(len(alphabet))]
			case 1: // delete
				src = append(src[:pos], src[pos+1:]...)
			case 2: // truncate
				src = src[:pos]
			}
		}
		safeParse(t, string(src))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParserCorpusParses(t *testing.T) {
	if _, err := ParseModule(corpus[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseProgram(corpus[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseProgram(corpus[2]); err != nil {
		t.Fatal(err)
	}
}
