// Package parser implements the concrete LOGRES syntax: schema sections
// (domains / classes / associations / functions), rules, goals and modules.
// The grammar is documented in the repository README; it covers every
// construct exercised by the paper's examples.
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokReal
	tokString
	tokPunct // one of the punctuation/operator spellings below
)

// token is one lexical token.
type token struct {
	kind tokKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// Error is a parse error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("parse error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
	toks []token
}

// multi-character operators, longest first.
var operators = []string{
	"<-", "?-", "->", "!=", "<=", ">=",
	"(", ")", "{", "}", "[", "]", "<", ">",
	",", ";", ":", ".", "=", "+", "-", "*", "/", "_",
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.emit(token{kind: tokEOF, line: l.line, col: l.col})
			return l.toks, nil
		}
		start := l.src[l.pos]
		switch {
		case isIdentStart(rune(start)):
			l.lexIdent()
		case unicode.IsDigit(rune(start)):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case start == '"':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		default:
			if !l.lexOperator() {
				return nil, &Error{l.line, l.col, fmt.Sprintf("unexpected character %q", start)}
			}
		}
	}
}

func (l *lexer) emit(t token) { l.toks = append(l.toks, t) }

func (l *lexer) advance(n int) {
	for i := 0; i < n && l.pos < len(l.src); i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance(1)
		case c == '%': // line comment, Prolog style
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		case strings.HasPrefix(l.src[l.pos:], "//"):
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.advance(1)
			}
		case strings.HasPrefix(l.src[l.pos:], "/*"):
			l.advance(2)
			for l.pos < len(l.src) && !strings.HasPrefix(l.src[l.pos:], "*/") {
				l.advance(1)
			}
			l.advance(2)
		default:
			return
		}
	}
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) }

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}

func (l *lexer) lexIdent() {
	line, col, start := l.line, l.col, l.pos
	for l.pos < len(l.src) && isIdentRune(rune(l.src[l.pos])) {
		l.advance(1)
	}
	l.emit(token{kind: tokIdent, text: l.src[start:l.pos], line: line, col: col})
}

func (l *lexer) lexNumber() error {
	line, col, start := l.line, l.col, l.pos
	for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
		l.advance(1)
	}
	isReal := false
	// A '.' is a decimal point only when followed by a digit; otherwise it
	// terminates a rule.
	if l.pos+1 < len(l.src) && l.src[l.pos] == '.' && unicode.IsDigit(rune(l.src[l.pos+1])) {
		isReal = true
		l.advance(1)
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
			l.advance(1)
		}
	}
	text := l.src[start:l.pos]
	kind := tokInt
	if isReal {
		kind = tokReal
	}
	l.emit(token{kind: kind, text: text, line: line, col: col})
	return nil
}

func (l *lexer) lexString() error {
	line, col := l.line, l.col
	l.advance(1) // opening quote
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return &Error{line, col, "unterminated string"}
		}
		c := l.src[l.pos]
		switch c {
		case '"':
			l.advance(1)
			l.emit(token{kind: tokString, text: b.String(), line: line, col: col})
			return nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return &Error{line, col, "unterminated escape"}
			}
			next := l.src[l.pos+1]
			switch next {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\\', '"':
				b.WriteByte(next)
			default:
				return &Error{l.line, l.col, fmt.Sprintf("unknown escape \\%c", next)}
			}
			l.advance(2)
		case '\n':
			return &Error{line, col, "newline in string"}
		default:
			b.WriteByte(c)
			l.advance(1)
		}
	}
}

func (l *lexer) lexOperator() bool {
	for _, op := range operators {
		if strings.HasPrefix(l.src[l.pos:], op) {
			l.emit(token{kind: tokPunct, text: op, line: l.line, col: l.col})
			l.advance(len(op))
			return true
		}
	}
	return false
}
