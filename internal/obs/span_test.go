package obs

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"
)

// TestSpanInstrumentStampsAndCounts: Instrument stamps Event.Req,
// tracks the live counters, and advances the phase as the evaluation's
// events arrive.
func TestSpanInstrumentStampsAndCounts(t *testing.T) {
	span := NewSpan("req-1", "trace-1", "parent-1")
	if span.Phase() != "accepted" {
		t.Fatalf("initial phase = %q", span.Phase())
	}
	var got []Event
	tr := span.Instrument(tracerFunc(func(ev Event) { got = append(got, ev) }))

	tr.Event(Event{Kind: KindEvalBegin})
	if span.Phase() != "eval" {
		t.Fatalf("phase after eval.begin = %q", span.Phase())
	}
	tr.Event(Event{Kind: KindRoundEnd, Count: 3, Total: 7})
	tr.Event(Event{Kind: KindRoundEnd, Count: 1, Total: 8})
	tr.Event(Event{Kind: KindBudget, Count: 5, Limit: 10})
	tr.Event(Event{Kind: KindModuleRetry, Duration: time.Millisecond})
	if span.Phase() != "backoff" {
		t.Fatalf("phase after retry = %q", span.Phase())
	}
	tr.Event(Event{Kind: KindModuleCommit, Detail: "fast"})
	if span.Phase() != "commit" {
		t.Fatalf("phase after commit = %q", span.Phase())
	}

	if span.Rounds() != 2 || span.Facts() != 8 || span.Retries() != 1 || span.BudgetUsed() != 5 {
		t.Fatalf("counters = rounds %d facts %d retries %d budget %d",
			span.Rounds(), span.Facts(), span.Retries(), span.BudgetUsed())
	}
	for _, ev := range got {
		if ev.Req != "req-1" {
			t.Fatalf("event %s req = %q, want req-1", ev.Kind, ev.Req)
		}
	}
	if len(got) != 6 {
		t.Fatalf("forwarded %d events, want 6", len(got))
	}
}

// TestSpanContext: round-trip through context; absent span is nil.
func TestSpanContext(t *testing.T) {
	if SpanFromContext(context.Background()) != nil {
		t.Fatal("span in empty context")
	}
	span := NewSpan("r", "", "")
	ctx := ContextWithSpan(context.Background(), span)
	if SpanFromContext(ctx) != span {
		t.Fatal("span did not round-trip")
	}
}

// TestProfileCollectorAssemblesAttempt: the collector builds per-stratum
// detail from the event stream, resets per-attempt state on a fresh
// eval.begin (strata describe the committed attempt), and accumulates
// retry/conflict/WAL counters call-wide.
func TestProfileCollectorAssemblesAttempt(t *testing.T) {
	c := NewProfileCollector()

	// Attempt 0: evaluates, then conflicts and retries.
	c.Event(Event{Kind: KindEvalBegin})
	c.Event(Event{Kind: KindStratumBegin, Stratum: 0, Detail: "semi-naive"})
	c.Event(Event{Kind: KindRuleFire, Rule: 0, Count: 4})
	c.Event(Event{Kind: KindRoundEnd, Round: 0, Count: 4, Total: 4})
	c.Event(Event{Kind: KindStratumEnd, Stratum: 0, Total: 4})
	c.Event(Event{Kind: KindEvalEnd, Count: 1, Total: 4, Duration: 5 * time.Microsecond})
	c.Event(Event{Kind: KindModuleConflict, Pred: "p", Round: 0, Detail: "mine: ...; theirs: ..."})
	c.Event(Event{Kind: KindModuleRetry, Round: 0, Duration: 200 * time.Microsecond})

	// Attempt 1: the committed one — vectorized this time, plus WAL.
	c.Event(Event{Kind: KindEvalBegin})
	c.Event(Event{Kind: KindStratumBegin, Stratum: 0, Detail: "semi-naive (vectorized)"})
	c.Event(Event{Kind: KindVecKernel, Pred: "join", Count: 2, Total: 100})
	c.Event(Event{Kind: KindRuleFire, Rule: 0, Count: 6})
	c.Event(Event{Kind: KindRoundEnd, Round: 0, Count: 6, Total: 6})
	c.Event(Event{Kind: KindRoundEnd, Round: 1, Count: 0, Total: 6})
	c.Event(Event{Kind: KindStratumEnd, Stratum: 0, Total: 6})
	c.Event(Event{Kind: KindEvalEnd, Count: 2, Total: 6, Duration: 9 * time.Microsecond})
	c.Event(Event{Kind: KindWALAppend, Count: 128, Total: 1024})
	c.Event(Event{Kind: KindWALSync, Duration: 3 * time.Microsecond})
	c.Event(Event{Kind: KindModuleCommit, Detail: "merge"})

	p := c.Profile(time.Millisecond)
	if p.WallNS != time.Millisecond.Nanoseconds() {
		t.Fatalf("wall = %d", p.WallNS)
	}
	if p.EvalNS != (9 * time.Microsecond).Nanoseconds() {
		t.Fatalf("eval = %d, want the committed attempt's", p.EvalNS)
	}
	if p.Rounds != 2 || p.Firings != 6 || p.Facts != 6 {
		t.Fatalf("rounds/firings/facts = %d/%d/%d, want 2/6/6 (committed attempt only)", p.Rounds, p.Firings, p.Facts)
	}
	if len(p.Strata) != 1 {
		t.Fatalf("strata = %d, want 1", len(p.Strata))
	}
	st := p.Strata[0]
	if !st.Vectorized || st.Mode != "semi-naive (vectorized)" {
		t.Fatalf("stratum mode = %q vectorized = %v", st.Mode, st.Vectorized)
	}
	if st.Rounds != 2 || len(st.Delta) != 2 || st.Delta[0] != 6 || st.Delta[1] != 0 {
		t.Fatalf("stratum rounds/delta = %d/%v", st.Rounds, st.Delta)
	}
	if len(st.Kernels) != 1 || st.Kernels[0].Kernel != "join" || st.Kernels[0].Rows != 100 {
		t.Fatalf("kernels = %+v", st.Kernels)
	}
	// Call-wide counters survived the per-attempt reset.
	if p.Retries != 1 || len(p.Conflicts) != 1 || p.Conflicts[0].Pred != "p" {
		t.Fatalf("retries/conflicts = %d/%+v", p.Retries, p.Conflicts)
	}
	if p.BackoffNS != (200 * time.Microsecond).Nanoseconds() {
		t.Fatalf("backoff = %d", p.BackoffNS)
	}
	if p.WALAppends != 1 || p.WALBytes != 128 || p.WALSyncs != 1 || p.WALSyncWaitNS != (3*time.Microsecond).Nanoseconds() {
		t.Fatalf("wal = %d/%d/%d/%d", p.WALAppends, p.WALBytes, p.WALSyncs, p.WALSyncWaitNS)
	}
	if p.CommitPath != "merge" {
		t.Fatalf("commit path = %q", p.CommitPath)
	}

	// Profile returns a copy: mutating it does not corrupt the collector.
	p.Strata[0].Delta[0] = 999
	if q := c.Profile(time.Millisecond); q.Strata[0].Delta[0] != 6 {
		t.Fatalf("collector state mutated through returned profile: %v", q.Strata[0].Delta)
	}
}

// TestCanonicalJSONLStripsReq: the req field rides in timestamped
// streams but never in canonical mode, so request-scoped tracing cannot
// break trace determinism.
func TestCanonicalJSONLStripsReq(t *testing.T) {
	ev := Event{Kind: KindRoundEnd, Round: 1, Count: 2, Total: 3, Req: "req-9"}

	var plain bytes.Buffer
	NewJSONL(&plain).Event(ev)
	if !strings.Contains(plain.String(), `"req":"req-9"`) {
		t.Fatalf("timestamped stream lost req: %s", plain.String())
	}

	var canon bytes.Buffer
	NewCanonicalJSONL(&canon).Event(ev)
	if strings.Contains(canon.String(), "req") {
		t.Fatalf("canonical stream leaked req: %s", canon.String())
	}
}

// TestTextSinkRendersEvents: the human-readable sink covers the kind
// switch and the fallback rendering.
func TestTextSinkRendersEvents(t *testing.T) {
	var buf bytes.Buffer
	tr := NewText(&buf)
	tr.Event(Event{Kind: KindEvalBegin, Workers: 2, Shards: 4, Count: 1, Total: 10})
	tr.Event(Event{Kind: KindStratumBegin, Stratum: 0, Count: 3, Detail: "semi-naive"})
	tr.Event(Event{Kind: KindRoundEnd, Stratum: 0, Round: 1, Count: 5, Total: 15, Duration: time.Millisecond})
	tr.Event(Event{Kind: KindModuleConflict, Pred: "p", Round: 2, Detail: "mine: w(p); theirs: w(p)"})
	tr.Event(Event{Kind: KindWALAppend, Count: 64, Total: 640}) // fallback branch

	out := buf.String()
	for _, want := range []string{
		"eval: begin workers=2 shards=4 strata=1 facts=10",
		"stratum 0: begin rules=3 mode=semi-naive",
		"stratum 0 round 1: delta=5 facts=15 (1ms)",
		"module p: conflict attempt 2: mine: w(p); theirs: w(p)",
		"wal.append",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text sink output missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 5 {
		t.Fatalf("line count = %d, want 5", lines)
	}
}

// TestFlightRecorderWraparound: once the ring wraps, Snapshot returns
// exactly the last n events, oldest first.
func TestFlightRecorderWraparound(t *testing.T) {
	r := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		r.Event(Event{Kind: KindRoundEnd, Round: i})
	}
	got := r.Snapshot()
	if len(got) != 4 {
		t.Fatalf("snapshot length = %d, want 4", len(got))
	}
	for i, ev := range got {
		if want := 6 + i; ev.Round != want {
			t.Fatalf("snapshot[%d].Round = %d, want %d (oldest first)", i, ev.Round, want)
		}
	}

	// A second wraparound stays ordered.
	for i := 10; i < 13; i++ {
		r.Event(Event{Kind: KindRoundEnd, Round: i})
	}
	got = r.Snapshot()
	for i, ev := range got {
		if want := 9 + i; ev.Round != want {
			t.Fatalf("after rewrap: snapshot[%d].Round = %d, want %d", i, ev.Round, want)
		}
	}

	// The dump renders oldest first too.
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	first := strings.Index(buf.String(), "round 9")
	last := strings.Index(buf.String(), "round 12")
	if first < 0 || last < 0 || first > last {
		t.Fatalf("dump order wrong:\n%s", buf.String())
	}
}

// TestMetricsDuplicateRegistrationPanics: one name cannot be a counter
// and a gauge; re-registering under the same type is fine.
func TestMetricsDuplicateRegistrationPanics(t *testing.T) {
	m := NewMetrics()
	m.Counter("logres_widgets_total").Add(1)
	// Same name, same type: the registered instrument comes back.
	if m.Counter("logres_widgets_total").Value() != 1 {
		t.Fatal("re-registration lost the counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("cross-type re-registration did not panic")
		}
	}()
	m.Gauge("logres_widgets_total")
}
