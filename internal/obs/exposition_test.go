package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestExpositionGolden locks the Prometheus text rendering: family
// ordering, one # TYPE line per family, cumulative le-buckets with the
// +Inf clamp, quantile convenience samples, and label merging. The
// fixture uses fixed observations so the output is byte-stable; update
// with `go test ./internal/obs -run Golden -update` after deliberate
// format changes.
func TestExpositionGolden(t *testing.T) {
	m := NewMetrics()
	m.Counter("logres_rounds_total").Add(5)
	m.Counter(`logres_http_responses_total{route="exec",code="200"}`).Add(3)
	m.Counter(`logres_http_responses_total{route="query",code="200"}`).Add(2)
	m.Gauge("logres_facts").Set(42)

	h := m.Histogram("logres_round_duration_ns")
	for _, v := range []int64{1, 500, 1000} {
		h.Observe(v)
	}
	lh := m.Histogram(`logres_http_request_duration_ns{route="exec"}`)
	lh.Observe(0)
	lh.Observe(7)

	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "exposition.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file.\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}
