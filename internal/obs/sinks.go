package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// jsonEvent is the wire form of an Event. Field order is fixed by the
// struct, omitempty keeps lines compact, and the canonical mode leaves
// every wall-clock and configuration-dependent field zero so two traces
// of the same program compare byte for byte.
type jsonEvent struct {
	Time     string `json:"time,omitempty"`
	Kind     Kind   `json:"kind"`
	Stratum  int    `json:"stratum,omitempty"`
	Round    int    `json:"round,omitempty"`
	Rule     int    `json:"rule,omitempty"`
	Pred     string `json:"pred,omitempty"`
	OID      int64  `json:"oid,omitempty"`
	Count    int    `json:"count,omitempty"`
	Total    int    `json:"total,omitempty"`
	Axis     string `json:"axis,omitempty"`
	Limit    int64  `json:"limit,omitempty"`
	Workers  int    `json:"workers,omitempty"`
	Shards   int    `json:"shards,omitempty"`
	Shard    int    `json:"shard,omitempty"`
	Duration int64  `json:"duration_ns,omitempty"`
	Detail   string `json:"detail,omitempty"`
	Req      string `json:"req,omitempty"`
}

// JSONL writes one JSON object per event — the machine-readable event
// log. Safe for concurrent use.
type JSONL struct {
	mu        sync.Mutex
	w         io.Writer
	canonical bool
	err       error
}

// NewJSONL returns a JSONL sink that stamps arrival timestamps.
func NewJSONL(w io.Writer) *JSONL { return &JSONL{w: w} }

// NewCanonicalJSONL returns a JSONL sink in canonical (deterministic)
// mode: timestamps, durations, and configuration-dependent fields are
// stripped and nondeterministic event kinds are skipped, so the output
// for a fixed program is byte-identical across workers × shards
// configurations.
func NewCanonicalJSONL(w io.Writer) *JSONL { return &JSONL{w: w, canonical: true} }

// Event implements Tracer.
func (t *JSONL) Event(ev Event) {
	if t.canonical && !ev.Kind.Deterministic() {
		return
	}
	je := jsonEvent{
		Kind:    ev.Kind,
		Stratum: ev.Stratum,
		Round:   ev.Round,
		Rule:    ev.Rule,
		Pred:    ev.Pred,
		OID:     ev.OID,
		Count:   ev.Count,
		Total:   ev.Total,
		Axis:    ev.Axis,
		Limit:   ev.Limit,
		Detail:  ev.Detail,
	}
	if !t.canonical {
		when := ev.Time
		if when.IsZero() {
			when = time.Now()
		}
		je.Time = when.UTC().Format(time.RFC3339Nano)
		je.Workers, je.Shards, je.Shard = ev.Workers, ev.Shards, ev.Shard
		je.Duration = int64(ev.Duration)
		je.Req = ev.Req
	}
	line, err := json.Marshal(je)
	if err != nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if _, err := t.w.Write(append(line, '\n')); err != nil {
		t.err = err
	}
}

// Err returns the first write error the sink swallowed (tracing must
// never fail an evaluation).
func (t *JSONL) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Text writes human-readable one-line renderings of each event — the
// debugging trace surface. Safe for concurrent use.
type Text struct {
	mu sync.Mutex
	w  io.Writer
}

// NewText returns a human-readable trace sink.
func NewText(w io.Writer) *Text { return &Text{w: w} }

// Event implements Tracer.
func (t *Text) Event(ev Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fmt.Fprintln(t.w, FormatEvent(ev))
}

// FormatEvent renders one event as the text sink does.
func FormatEvent(ev Event) string {
	switch ev.Kind {
	case KindEvalBegin:
		return fmt.Sprintf("eval: begin workers=%d shards=%d strata=%d facts=%d",
			ev.Workers, ev.Shards, ev.Count, ev.Total)
	case KindEvalEnd:
		return fmt.Sprintf("eval: end rounds=%d facts=%d in %s", ev.Count, ev.Total, ev.Duration)
	case KindStratumBegin:
		return fmt.Sprintf("stratum %d: begin rules=%d mode=%s", ev.Stratum, ev.Count, ev.Detail)
	case KindStratumEnd:
		return fmt.Sprintf("stratum %d: end facts=%d", ev.Stratum, ev.Total)
	case KindRoundBegin:
		return fmt.Sprintf("stratum %d round %d: begin", ev.Stratum, ev.Round)
	case KindRoundEnd:
		return fmt.Sprintf("stratum %d round %d: delta=%d facts=%d (%s)",
			ev.Stratum, ev.Round, ev.Count, ev.Total, ev.Duration)
	case KindRuleFire:
		return fmt.Sprintf("stratum %d round %d: rule #%d fired %d times",
			ev.Stratum, ev.Round, ev.Rule, ev.Count)
	case KindOIDInvent:
		return fmt.Sprintf("stratum %d round %d: rule #%d invented oid %d (%s)",
			ev.Stratum, ev.Round, ev.Rule, ev.OID, ev.Pred)
	case KindMerge:
		return fmt.Sprintf("round %d: merged %d shards in %s", ev.Round, ev.Shards, ev.Duration)
	case KindBudget:
		return fmt.Sprintf("stratum %d round %d: budget %s %d/%d",
			ev.Stratum, ev.Round, ev.Axis, ev.Count, ev.Limit)
	case KindGuardCheck:
		return fmt.Sprintf("stratum %d round %d: in-round guard trip (rule #%d): %s",
			ev.Stratum, ev.Round, ev.Rule, ev.Detail)
	case KindAbort:
		return fmt.Sprintf("abort: %s at stratum %d round %d: %s", ev.Axis, ev.Stratum, ev.Round, ev.Detail)
	case KindModuleBegin:
		return fmt.Sprintf("module: begin mode=%s", ev.Detail)
	case KindModuleEnd:
		return fmt.Sprintf("module: end mode=%s (%s)", ev.Detail, ev.Duration)
	case KindModuleCommit:
		return fmt.Sprintf("module %s: committed attempt %d delta=%d (%s)", ev.Pred, ev.Round, ev.Count, ev.Detail)
	case KindModuleConflict:
		return fmt.Sprintf("module %s: conflict attempt %d: %s", ev.Pred, ev.Round, ev.Detail)
	case KindModuleRetry:
		return fmt.Sprintf("module %s: retry attempt %d after %s", ev.Pred, ev.Round, ev.Duration)
	case KindClosureRound:
		return fmt.Sprintf("closure round %d: inserted=%d total=%d", ev.Round, ev.Count, ev.Total)
	}
	return fmt.Sprintf("%s stratum=%d round=%d count=%d detail=%s", ev.Kind, ev.Stratum, ev.Round, ev.Count, ev.Detail)
}

// FlightRecorder keeps the last N events in a ring buffer and, when an
// abort event arrives, dumps them to the configured writer — the
// post-mortem surface for a stalled or aborted query whose full trace
// nobody was recording. Safe for concurrent use.
type FlightRecorder struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	full    bool
	dumpTo  io.Writer
	dumped  int // number of abort-triggered dumps
	stamped bool
}

// NewFlightRecorder returns a recorder holding the last n events
// (n <= 0 selects 256). Call SetDumpOnAbort to get automatic dumps.
func NewFlightRecorder(n int) *FlightRecorder {
	if n <= 0 {
		n = 256
	}
	return &FlightRecorder{buf: make([]Event, n)}
}

// SetDumpOnAbort makes the recorder write its buffer to w whenever an
// abort event (KindAbort) arrives.
func (r *FlightRecorder) SetDumpOnAbort(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dumpTo = w
}

// Event implements Tracer.
func (r *FlightRecorder) Event(ev Event) {
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	r.mu.Lock()
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next, r.full = 0, true
	}
	w := r.dumpTo
	r.mu.Unlock()
	if ev.Kind == KindAbort && w != nil {
		r.mu.Lock()
		r.dumped++
		r.mu.Unlock()
		r.WriteTo(w)
	}
}

// Dumps reports how many abort-triggered dumps have been written.
func (r *FlightRecorder) Dumps() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dumped
}

// Snapshot returns the recorded events, oldest first.
func (r *FlightRecorder) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// WriteTo renders the recorded events (oldest first) as a readable
// flight-recorder dump.
func (r *FlightRecorder) WriteTo(w io.Writer) (int64, error) {
	events := r.Snapshot()
	var written int64
	n, err := fmt.Fprintf(w, "--- flight recorder: last %d events ---\n", len(events))
	written += int64(n)
	if err != nil {
		return written, err
	}
	for _, ev := range events {
		n, err := fmt.Fprintf(w, "%s %s\n", ev.Time.UTC().Format("15:04:05.000000"), FormatEvent(ev))
		written += int64(n)
		if err != nil {
			return written, err
		}
	}
	n, err = fmt.Fprintln(w, "--- end flight recorder ---")
	written += int64(n)
	return written, err
}
