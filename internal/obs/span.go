package obs

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Span is the request-scoped observability handle: the identity minted
// (or extracted from W3C traceparent / X-Request-ID headers) for one
// inbound request, carried through context so every trace event the
// request causes — evaluation rounds, vectorized kernels, conflict
// retries, WAL appends and fsync waits — is attributable to it.
//
// A span does not replace the process-wide tracer: Instrument wraps the
// call's existing tracer chain, stamping Event.Req and keeping live
// counters for the /debug/requests inspector. When no span is in the
// context and no profile was requested, calls run exactly as before —
// the nil-tracer fast path is untouched and the canonical JSONL stream
// stays byte-identical.
type Span struct {
	// RequestID is the request identity stamped into Event.Req. Minted
	// by the server when the client did not send X-Request-ID.
	RequestID string
	// TraceID and ParentID are the W3C traceparent components when the
	// client sent one ("" otherwise).
	TraceID  string
	ParentID string
	// Start is when the request entered the server.
	Start time.Time

	phase     atomic.Value // string: what the request is doing right now
	rounds    atomic.Int64 // fixpoint rounds run so far
	facts     atomic.Int64 // fact count after the latest round
	retries   atomic.Int64 // optimistic-commit retries so far
	budget    atomic.Int64 // max budget consumption seen (count of the tightest axis)
	collector *ProfileCollector
}

// NewSpan returns a span for one request. requestID must be non-empty;
// traceID/parentID may be "" when the client sent no traceparent.
func NewSpan(requestID, traceID, parentID string) *Span {
	s := &Span{RequestID: requestID, TraceID: traceID, ParentID: parentID, Start: time.Now()}
	s.phase.Store("accepted")
	return s
}

// SetPhase records what the request is doing ("decode", "eval",
// "stream", ...). Event arrival also advances the phase automatically.
func (s *Span) SetPhase(p string) { s.phase.Store(p) }

// Phase returns the current phase.
func (s *Span) Phase() string {
	p, _ := s.phase.Load().(string)
	return p
}

// Rounds, Facts, Retries, and BudgetUsed expose the live counters the
// /debug/requests inspector reports.
func (s *Span) Rounds() int64     { return s.rounds.Load() }
func (s *Span) Facts() int64      { return s.facts.Load() }
func (s *Span) Retries() int64    { return s.retries.Load() }
func (s *Span) BudgetUsed() int64 { return s.budget.Load() }

// EnableProfile attaches a profile collector to the span. Must be
// called before the evaluation starts (the server does it while
// decoding the request); events arriving afterwards feed the profile.
func (s *Span) EnableProfile() *ProfileCollector {
	if s.collector == nil {
		s.collector = NewProfileCollector()
	}
	return s.collector
}

// Collector returns the attached profile collector (nil when profiling
// was not requested for this request).
func (s *Span) Collector() *ProfileCollector { return s.collector }

// Instrument wraps base so that every event is stamped with the span's
// request id, feeds the span's live counters, and — when profiling is
// enabled — the profile collector. base may be nil; the result is never
// nil (the span itself always observes).
func (s *Span) Instrument(base Tracer) Tracer {
	return spanTracer{span: s, base: base}
}

type spanTracer struct {
	span *Span
	base Tracer
}

func (t spanTracer) Event(ev Event) {
	ev.Req = t.span.RequestID
	switch ev.Kind {
	case KindEvalBegin:
		t.span.phase.Store("eval")
	case KindRoundEnd:
		t.span.rounds.Add(1)
		t.span.facts.Store(int64(ev.Total))
	case KindBudget:
		if int64(ev.Count) > t.span.budget.Load() {
			t.span.budget.Store(int64(ev.Count))
		}
	case KindModuleCommit:
		t.span.phase.Store("commit")
	case KindModuleRetry:
		t.span.retries.Add(1)
		t.span.phase.Store("backoff")
	case KindWALAppend:
		t.span.phase.Store("wal")
	}
	if t.base != nil {
		t.base.Event(ev)
	}
	if c := t.span.collector; c != nil {
		c.Event(ev)
	}
}

type spanKey struct{}

// ContextWithSpan returns a context carrying the span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanKey{}, s)
}

// SpanFromContext returns the context's span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// Profile is the EXPLAIN-ANALYZE-style account of one call: where the
// time went (per-stratum wall clock, WAL sync waits, retry backoff),
// what the evaluation did (rounds, firings, delta curve, vectorized vs
// row dispatch), and what the optimistic commit path cost (retries with
// conflict footprints). Assembled by a ProfileCollector from the same
// event stream the tracers see.
type Profile struct {
	RequestID string `json:"request_id,omitempty"`
	TraceID   string `json:"trace_id,omitempty"`
	// WallNS is the whole call's wall clock (request receipt to
	// response on the server; call entry to return for WithCallProfile).
	WallNS int64 `json:"wall_ns"`
	// EvalNS is the committed evaluation's wall clock.
	EvalNS int64 `json:"eval_ns"`
	// Rounds and Firings total over the committed attempt; Facts is the
	// final fact count.
	Rounds  int `json:"rounds"`
	Firings int `json:"firings"`
	Facts   int `json:"facts"`
	// Strata describes the committed attempt, one entry per stratum.
	Strata []StratumProfile `json:"strata,omitempty"`
	// Retries counts optimistic-commit re-evaluations; Conflicts holds
	// one entry per failed validation; BackoffNS is the total backoff
	// slept between attempts.
	Retries   int               `json:"retries"`
	Conflicts []ConflictProfile `json:"conflicts,omitempty"`
	BackoffNS int64             `json:"backoff_ns,omitempty"`
	// CommitPath is how the winning commit installed its result
	// ("fast", "merge", "replace", "read-only"); empty for serial calls.
	CommitPath string `json:"commit_path,omitempty"`
	// WAL accounting: appended records/bytes and the fsync waits this
	// call paid for (interval-policy background syncs are not charged).
	WALAppends    int   `json:"wal_appends,omitempty"`
	WALBytes      int64 `json:"wal_bytes,omitempty"`
	WALSyncs      int   `json:"wal_syncs,omitempty"`
	WALSyncWaitNS int64 `json:"wal_sync_wait_ns,omitempty"`
	// Abort carries the abort cause when the call failed mid-flight.
	Abort string `json:"abort,omitempty"`
}

// StratumProfile accounts for one stratum of the committed attempt.
type StratumProfile struct {
	Stratum int `json:"stratum"`
	// Mode is the evaluation mode the planner chose ("semi-naive",
	// "semi-naive (vectorized)", "naive", ...); Vectorized flags the
	// columnar path.
	Mode       string `json:"mode"`
	Vectorized bool   `json:"vectorized,omitempty"`
	Rounds     int    `json:"rounds"`
	WallNS     int64  `json:"wall_ns"`
	Firings    int    `json:"firings"`
	// Delta is the per-round delta curve (facts added per round; signed
	// under the general operator).
	Delta []int `json:"delta,omitempty"`
	// Facts is the fact count when the stratum closed.
	Facts int `json:"facts"`
	// Kernels breaks down columnar kernel work (vectorized strata only).
	Kernels []KernelProfile `json:"kernels,omitempty"`
}

// KernelProfile is one columnar kernel's aggregate work in one stratum.
type KernelProfile struct {
	Kernel string `json:"kernel"`
	Calls  int    `json:"calls"`
	Rows   int    `json:"rows"`
}

// ConflictProfile is one failed optimistic-commit validation.
type ConflictProfile struct {
	// Attempt is the retry attempt that failed (0 = first try).
	Attempt int `json:"attempt"`
	// Pred is the conflicting predicate.
	Pred string `json:"pred,omitempty"`
	// Footprints carries both sides' footprints as the conflict event
	// reported them.
	Footprints string `json:"footprints,omitempty"`
}

// ProfileCollector assembles a Profile from a trace event stream. It is
// a Tracer, attached per call (fan in with Multi or via Span.Instrument)
// only when profiling was requested, so unprofiled calls pay nothing.
//
// Optimistic retries re-run the evaluation: the collector resets its
// per-attempt state on each eval.begin so Strata describe the attempt
// that committed, while retry/conflict/WAL counters accumulate across
// the whole call.
type ProfileCollector struct {
	mu           sync.Mutex
	p            Profile
	strata       []StratumProfile
	current      *StratumProfile
	stratumStart time.Time
}

// NewProfileCollector returns an empty collector.
func NewProfileCollector() *ProfileCollector { return &ProfileCollector{} }

// Event implements Tracer.
func (c *ProfileCollector) Event(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch ev.Kind {
	case KindEvalBegin:
		// A fresh attempt: per-attempt state restarts, call-wide
		// counters (retries, conflicts, WAL) persist.
		c.strata = c.strata[:0]
		c.current = nil
		c.p.Rounds, c.p.Firings, c.p.EvalNS = 0, 0, 0
	case KindStratumBegin:
		c.strata = append(c.strata, StratumProfile{
			Stratum:    ev.Stratum,
			Mode:       ev.Detail,
			Vectorized: strings.Contains(ev.Detail, "vector"),
		})
		c.current = &c.strata[len(c.strata)-1]
		c.stratumStart = time.Now()
	case KindStratumEnd:
		if c.current != nil {
			c.current.Facts = ev.Total
			c.current.WallNS = time.Since(c.stratumStart).Nanoseconds()
			c.current = nil
		}
	case KindRoundEnd:
		c.p.Rounds++
		c.p.Facts = ev.Total
		if c.current != nil {
			c.current.Rounds++
			c.current.Delta = append(c.current.Delta, ev.Count)
		}
	case KindRuleFire:
		c.p.Firings += ev.Count
		if c.current != nil {
			c.current.Firings += ev.Count
		}
	case KindVecKernel:
		if c.current != nil {
			c.current.Kernels = append(c.current.Kernels, KernelProfile{
				Kernel: ev.Pred, Calls: ev.Count, Rows: ev.Total,
			})
		}
	case KindEvalEnd:
		c.p.EvalNS = int64(ev.Duration)
		c.p.Facts = ev.Total
	case KindModuleCommit:
		c.p.CommitPath = ev.Detail
	case KindModuleConflict:
		c.p.Conflicts = append(c.p.Conflicts, ConflictProfile{
			Attempt: ev.Round, Pred: ev.Pred, Footprints: ev.Detail,
		})
	case KindModuleRetry:
		c.p.Retries++
		c.p.BackoffNS += int64(ev.Duration)
	case KindWALAppend:
		c.p.WALAppends++
		c.p.WALBytes += int64(ev.Count)
	case KindWALSync:
		c.p.WALSyncs++
		c.p.WALSyncWaitNS += int64(ev.Duration)
	case KindAbort:
		c.p.Abort = ev.Detail
		if c.p.Abort == "" {
			c.p.Abort = ev.Axis
		}
	}
}

// Profile finalizes and returns a copy of the assembled profile. wall
// is the whole call's elapsed time (the caller measures it — request
// receipt to response, or call entry to return).
func (c *ProfileCollector) Profile(wall time.Duration) *Profile {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.p
	out.WallNS = wall.Nanoseconds()
	out.Strata = make([]StratumProfile, len(c.strata))
	copy(out.Strata, c.strata)
	for i := range out.Strata {
		out.Strata[i].Delta = append([]int(nil), c.strata[i].Delta...)
		out.Strata[i].Kernels = append([]KernelProfile(nil), c.strata[i].Kernels...)
	}
	out.Conflicts = append([]ConflictProfile(nil), c.p.Conflicts...)
	return &out
}
