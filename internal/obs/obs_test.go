package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d, want 100", h.Count())
	}
	if h.Sum() != 5050 {
		t.Fatalf("Sum = %d, want 5050", h.Sum())
	}
	// Bucket upper bounds are 2^k - 1; p50 of 1..100 lands in [33..64],
	// p99 in [65..128].
	if q := h.Quantile(0.5); q != 63 {
		t.Fatalf("p50 = %d, want 63", q)
	}
	if q := h.Quantile(0.99); q != 127 {
		t.Fatalf("p99 = %d, want 127", q)
	}
	if q := (&Histogram{}).Quantile(0.5); q != 0 {
		t.Fatalf("empty p50 = %d, want 0", q)
	}
	h2 := &Histogram{}
	h2.Observe(0)
	h2.Observe(-5)
	if q := h2.Quantile(0.5); q != 0 {
		t.Fatalf("zero-valued p50 = %d, want 0", q)
	}
}

func TestMetricsPrometheusText(t *testing.T) {
	m := NewMetrics()
	m.Counter("logres_rounds_total").Add(7)
	m.Counter(`logres_aborts_total{axis="facts"}`).Add(1)
	m.Counter(`logres_aborts_total{axis="rounds"}`).Add(2)
	m.Gauge("logres_facts").Set(42)
	m.Histogram("logres_round_duration_ns").Observe(1000)

	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE logres_rounds_total counter",
		"logres_rounds_total 7",
		"# TYPE logres_aborts_total counter",
		`logres_aborts_total{axis="facts"} 1`,
		`logres_aborts_total{axis="rounds"} 2`,
		"# TYPE logres_facts gauge",
		"logres_facts 42",
		"# TYPE logres_round_duration_ns histogram",
		`logres_round_duration_ns_bucket{le="1023"} 1`,
		`logres_round_duration_ns_bucket{le="+Inf"} 1`,
		`logres_round_duration_ns{quantile="0.5"}`,
		"logres_round_duration_ns_sum 1000",
		"logres_round_duration_ns_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per family, even with multiple labeled series.
	if n := strings.Count(out, "# TYPE logres_aborts_total"); n != 1 {
		t.Fatalf("%d TYPE lines for logres_aborts_total, want 1", n)
	}
	// Prometheus text format: every non-comment line is `name[{labels}] value`.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) != 2 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}

func TestMetricsTracerAdapter(t *testing.T) {
	m := NewMetrics()
	tr := m.Tracer()
	tr.Event(Event{Kind: KindEvalBegin, Total: 10})
	tr.Event(Event{Kind: KindRoundEnd, Count: 5, Total: 15, Duration: time.Millisecond})
	tr.Event(Event{Kind: KindRuleFire, Count: 5})
	tr.Event(Event{Kind: KindOIDInvent})
	tr.Event(Event{Kind: KindAbort, Axis: "facts"})
	if got := m.Counter("logres_rounds_total").Value(); got != 1 {
		t.Fatalf("rounds = %d, want 1", got)
	}
	if got := m.Counter("logres_rule_firings_total").Value(); got != 5 {
		t.Fatalf("firings = %d, want 5", got)
	}
	if got := m.Counter("logres_oids_invented_total").Value(); got != 1 {
		t.Fatalf("oids = %d, want 1", got)
	}
	if got := m.Counter(`logres_aborts_total{axis="facts"}`).Value(); got != 1 {
		t.Fatalf("aborts{facts} = %d, want 1", got)
	}
	if got := m.Gauge("logres_facts").Value(); got != 15 {
		t.Fatalf("facts gauge = %d, want 15", got)
	}
	if got := m.Histogram("logres_round_duration_ns").Count(); got != 1 {
		t.Fatalf("round duration observations = %d, want 1", got)
	}
}

func TestServeMux(t *testing.T) {
	m := NewMetrics()
	m.Counter("logres_rounds_total").Add(3)
	mux := NewServeMux(m)

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}
	if rec := get("/metrics"); rec.Code != 200 || !strings.Contains(rec.Body.String(), "logres_rounds_total 3") {
		t.Fatalf("/metrics: code %d body %q", rec.Code, rec.Body.String())
	} else if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content-type = %q", ct)
	}
	if rec := get("/debug/vars"); rec.Code != 200 || !json.Valid(rec.Body.Bytes()) {
		t.Fatalf("/debug/vars: code %d, valid JSON = %v", rec.Code, json.Valid(rec.Body.Bytes()))
	}
	if rec := get("/debug/pprof/"); rec.Code != 200 {
		t.Fatalf("/debug/pprof/: code %d", rec.Code)
	}
}

func TestCanonicalJSONLStripsNondeterminism(t *testing.T) {
	var buf bytes.Buffer
	s := NewCanonicalJSONL(&buf)
	s.Event(Event{Kind: KindRoundEnd, Stratum: 1, Round: 2, Count: 3, Total: 4,
		Duration: time.Second, Workers: 8, Shards: 8, Time: time.Now()})
	s.Event(Event{Kind: KindMerge, Round: 2, Shards: 8, Duration: time.Second})
	s.Event(Event{Kind: KindGuardCheck, Round: 2, Detail: "trip"})
	out := buf.String()
	if strings.Count(out, "\n") != 1 {
		t.Fatalf("canonical sink kept nondeterministic kinds:\n%s", out)
	}
	for _, banned := range []string{"time", "duration", "workers", "shards"} {
		if strings.Contains(out, banned) {
			t.Fatalf("canonical line carries %q:\n%s", banned, out)
		}
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(out), &ev); err != nil {
		t.Fatal(err)
	}
	if ev["kind"] != "round.end" || ev["total"] != float64(4) {
		t.Fatalf("unexpected canonical event: %v", ev)
	}
}

func TestFlightRecorderRingAndDump(t *testing.T) {
	fr := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		fr.Event(Event{Kind: KindRoundBegin, Round: i})
	}
	snap := fr.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("snapshot = %d events, want 4", len(snap))
	}
	for i, ev := range snap {
		if ev.Round != 6+i {
			t.Fatalf("snapshot[%d].Round = %d, want %d (oldest first)", i, ev.Round, 6+i)
		}
	}
	var dump bytes.Buffer
	fr.SetDumpOnAbort(&dump)
	fr.Event(Event{Kind: KindAbort, Detail: "boom"})
	if fr.Dumps() != 1 {
		t.Fatalf("Dumps = %d, want 1", fr.Dumps())
	}
	if !strings.Contains(dump.String(), "boom") {
		t.Fatalf("dump missing abort detail:\n%s", dump.String())
	}
}

func TestMultiDropsNils(t *testing.T) {
	if Multi(nil, nil) != nil {
		t.Fatal("Multi(nil, nil) != nil")
	}
	var got []Kind
	one := tracerFunc(func(ev Event) { got = append(got, ev.Kind) })
	tr := Multi(nil, one, nil, one)
	tr.Event(Event{Kind: KindEvalEnd})
	if len(got) != 2 {
		t.Fatalf("fan-out delivered %d events, want 2", len(got))
	}
}

type tracerFunc func(Event)

func (f tracerFunc) Event(ev Event) { f(ev) }
