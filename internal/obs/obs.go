// Package obs is the zero-dependency observability layer of the LOGRES
// engine: typed evaluation trace events (Tracer), a lock-cheap metrics
// registry with expvar and Prometheus-text exposition (Metrics), and
// sink implementations — a JSONL event log, a human-readable trace
// writer, and a ring-buffer flight recorder that dumps the last N
// events on abort.
//
// The paper's §5 calls for "tools supporting the design, debugging, and
// monitoring of LOGRES databases and programs"; engine.Stats is the
// after-the-fact summary, this package is the streaming half. Every
// emission site in the engine is behind a nil-tracer check, so an
// untraced evaluation pays nothing beyond one predictable branch per
// round.
//
// Determinism contract: events whose Kind is deterministic (stratum,
// round, rule-firing, oid-invention, budget-axis, abort events) carry
// only evaluation-determined payloads — for a fixed program and input,
// their ordered stream is identical for every workers × shards
// configuration. Wall-clock fields (Time, Duration) and
// configuration-dependent fields (Workers, Shards, Shard) are excluded
// from that contract; the canonical JSONL sink strips them (and skips
// the nondeterministic kinds entirely) so two traces can be compared
// byte for byte.
package obs

import "time"

// Kind names one trace event type.
type Kind string

// The event taxonomy. See DESIGN.md §8 for the full field contract of
// each kind.
const (
	// KindEvalBegin opens one engine evaluation (Program.Run): Workers,
	// Shards, Count = strata, Total = extensional facts.
	KindEvalBegin Kind = "eval.begin"
	// KindEvalEnd closes a successful evaluation: Count = rounds run,
	// Total = final fact count, Duration = wall-clock.
	KindEvalEnd Kind = "eval.end"
	// KindStratumBegin opens one stratum: Stratum, Count = rules,
	// Detail = evaluation mode.
	KindStratumBegin Kind = "stratum.begin"
	// KindStratumEnd closes one stratum: Stratum, Total = fact count.
	KindStratumEnd Kind = "stratum.end"
	// KindRoundBegin opens one fixpoint round: Stratum, Round.
	KindRoundBegin Kind = "round.begin"
	// KindRoundEnd closes one round: Count = the round's delta size
	// (signed under the general operator: deletions shrink the set),
	// Total = facts after the round, Duration = the round's wall-clock.
	KindRoundEnd Kind = "round.end"
	// KindRuleFire reports one rule's valuations in one round: Rule,
	// Count = head instantiations (suppressed firings included).
	KindRuleFire Kind = "rule.fire"
	// KindOIDInvent reports one invented oid: Rule, Pred = class,
	// OID = the invented identifier.
	KindOIDInvent Kind = "oid.invent"
	// KindMerge reports one parallel sharded delta merge: Round,
	// Shards, Duration = critical path (longest shard).
	// Nondeterministic: present only on parallel configurations.
	KindMerge Kind = "merge"
	// KindBudget reports consumption against one armed budget axis at a
	// round boundary: Axis, Count = used, Limit = the effective bound.
	KindBudget Kind = "budget"
	// KindGuardCheck reports an in-round guard trip: the coarse
	// tuple-count check inside rule matching detected cancellation or an
	// exhausted budget mid-round. Rule, Round, Detail = cause.
	// Nondeterministic: on parallel configurations the trip can surface
	// from any worker, and the first tripping predicate varies.
	KindGuardCheck Kind = "guard.check"
	// KindAbort reports an aborted evaluation: Axis (budget aborts),
	// Stratum, Round, Detail = the abort error.
	KindAbort Kind = "abort"
	// KindModuleBegin / KindModuleEnd bracket one module application:
	// Detail = the application mode.
	KindModuleBegin Kind = "module.begin"
	KindModuleEnd   Kind = "module.end"
	// KindModuleCommit reports one successful optimistic concurrent
	// commit: Pred = module name, Count = delta facts installed,
	// Round = the retry attempt that committed (0 = first try),
	// Detail = commit path ("fast", "merge", "replace", "read-only").
	// Nondeterministic: depends on commit interleaving.
	KindModuleCommit Kind = "module.commit"
	// KindModuleConflict reports one failed commit validation: Pred =
	// the conflicting predicate, Round = the attempt, Detail = both
	// footprints. Nondeterministic.
	KindModuleConflict Kind = "module.conflict"
	// KindModuleRetry reports the backoff before a re-application:
	// Round = the attempt whose conflict triggered the backoff (the same
	// index the paired KindModuleConflict carries), Duration = the
	// backoff slept. Nondeterministic.
	KindModuleRetry Kind = "module.retry"
	// KindClosureRound reports one algres closure round: Round,
	// Count = tuples inserted this round, Total = cumulative insertions.
	KindClosureRound Kind = "closure.round"
	// KindVecKernel reports one columnar kernel's aggregate work over a
	// vectorized stratum, emitted at the stratum boundary in kernel-name
	// order: Stratum, Pred = kernel name (select/join/antijoin/filter/
	// emit), Count = invocations, Total = rows produced,
	// Detail = "vectorize". Deterministic: the columnar path is
	// batch-at-a-time, so the counters do not depend on workers/shards.
	KindVecKernel Kind = "vec.kernel"
	// KindParallelDispatch reports one semi-naive round actually fanning
	// out to the worker pool (rounds below the size cutoff run inline
	// and emit nothing): Stratum, Round, Count = tasks, Total = the
	// probe (delta) size that justified the fan-out. Nondeterministic:
	// present only on parallel configurations.
	KindParallelDispatch Kind = "parallel.dispatch"
	// KindWALAppend reports one record appended to the write-ahead log:
	// Round = the record's commit epoch (truncated to int), Pred = the
	// record type ("delta", "replace", "register"), Count = framed bytes
	// written, Total = WAL size in bytes after the append.
	// Nondeterministic: depends on commit interleaving and durability
	// configuration.
	KindWALAppend Kind = "wal.append"
	// KindWALSync reports one WAL fsync: Duration = the sync wall-clock,
	// Detail = the policy that triggered it ("always", "interval",
	// "explicit"). Nondeterministic.
	KindWALSync Kind = "wal.fsync"
	// KindWALRecover reports one completed crash recovery: Round = the
	// recovered epoch, Count = WAL records replayed, Detail = "clean" or
	// the torn-tail recovery error. Nondeterministic.
	KindWALRecover Kind = "wal.recover"
	// KindWALCompact reports one log compaction: Round = the checkpoint
	// epoch, Count = WAL records truncated away, Duration = the
	// compaction wall-clock. Nondeterministic.
	KindWALCompact Kind = "wal.compact"
	// KindIVMPropagate reports one incremental view-maintenance
	// propagation after a commit: Round = the commit epoch (truncated to
	// int), Count = derived facts that changed (adds + removes), Total =
	// the full derived set size afterwards, Duration = the propagation
	// wall-clock. Nondeterministic: present only with incremental
	// maintenance enabled and dependent on commit interleaving.
	KindIVMPropagate Kind = "ivm.propagate"
	// KindIVMRebuild reports one full recomputation of the maintenance
	// state (construction, whole-state replacement, or fallback after a
	// propagation error): Round = the commit epoch, Detail = the reason,
	// Duration = the rebuild wall-clock. Nondeterministic.
	KindIVMRebuild Kind = "ivm.rebuild"
	// KindSubEmit reports one fan-out of a commit's view diff to live
	// subscriptions: Round = the commit epoch, Count = subscribers
	// delivered to, Total = slow subscribers dropped. Nondeterministic.
	KindSubEmit Kind = "sub.emit"
)

// Deterministic reports whether events of this kind are part of the
// determinism contract: their ordered stream is identical for every
// workers × shards configuration (wall-clock fields excluded).
func (k Kind) Deterministic() bool {
	switch k {
	case KindMerge, KindGuardCheck, KindModuleCommit, KindModuleConflict, KindModuleRetry,
		KindParallelDispatch, KindWALAppend, KindWALSync, KindWALRecover, KindWALCompact,
		KindIVMPropagate, KindIVMRebuild, KindSubEmit:
		return false
	}
	return true
}

// Event is one typed trace event. Fields are kind-specific (zero when
// not applicable); see the Kind constants for each kind's payload.
type Event struct {
	Kind Kind
	// Time is the emission wall-clock time. Emitters leave it zero —
	// sinks that want timestamps stamp it on arrival — so the hot path
	// never calls time.Now for an event the sink will not timestamp.
	Time time.Time
	// Stratum is the evaluation stratum (-1 when strata do not apply).
	Stratum int
	// Round is the fixpoint round within the stratum.
	Round int
	// Rule is the compiled rule id.
	Rule int
	// Pred is the predicate the event concerns (e.g. the invented
	// object's class).
	Pred string
	// OID is the invented object identifier (KindOIDInvent).
	OID int64
	// Count is the kind-specific count: delta size, firings, tuples.
	Count int
	// Total is the kind-specific running total (usually the fact count).
	Total int
	// Axis is the budget axis (KindBudget, KindAbort).
	Axis string
	// Limit is the effective bound of the axis (KindBudget).
	Limit int64
	// Workers and Shards describe the evaluation configuration
	// (KindEvalBegin); Shard indexes one merge goroutine (KindMerge).
	// Configuration-dependent: excluded from the determinism contract.
	Workers, Shards, Shard int
	// Duration is the wall-clock measurement of timing-carrying kinds.
	// Excluded from the determinism contract.
	Duration time.Duration
	// Detail is a short free-form annotation (mode names, abort causes).
	Detail string
	// Req is the originating request's id when the event was emitted
	// under a request span (Span.Instrument stamps it); empty for
	// process-local evaluations. Request identity is not a property of
	// the evaluation, so Req is excluded from the determinism contract
	// and stripped by the canonical sink.
	Req string
}

// Tracer receives trace events. Implementations must be safe for
// concurrent use: most events are emitted from the evaluation's
// orchestrating goroutine, but in-round guard trips (KindGuardCheck)
// can surface from worker goroutines.
type Tracer interface {
	Event(Event)
}

// multi fans events out to several tracers in order.
type multi []Tracer

func (m multi) Event(ev Event) {
	for _, t := range m {
		t.Event(ev)
	}
}

// Multi combines tracers into one; nil entries are dropped. Returns nil
// when nothing remains, so the engine's nil fast path still applies.
func Multi(tracers ...Tracer) Tracer {
	var out multi
	for _, t := range tracers {
		if t != nil {
			out = append(out, t)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	}
	return out
}
