package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestServeMuxReadOnly: every observability route serves GET and HEAD
// and rejects mutating methods with 405 + Allow, so the mux is safe to
// mount beside data-plane routes that do mutate.
func TestServeMuxReadOnly(t *testing.T) {
	m := NewMetrics()
	m.Counter("logres_test_total").Add(3)
	mux := NewServeMux(m)

	routes := []string{"/metrics", "/debug/vars", "/debug/pprof/"}
	for _, route := range routes {
		for _, method := range []string{http.MethodGet, http.MethodHead} {
			rr := httptest.NewRecorder()
			mux.ServeHTTP(rr, httptest.NewRequest(method, route, nil))
			if rr.Code != http.StatusOK {
				t.Errorf("%s %s = %d, want 200", method, route, rr.Code)
			}
		}
		for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
			rr := httptest.NewRecorder()
			mux.ServeHTTP(rr, httptest.NewRequest(method, route, strings.NewReader("x")))
			if rr.Code != http.StatusMethodNotAllowed {
				t.Errorf("%s %s = %d, want 405", method, route, rr.Code)
			}
			if allow := rr.Header().Get("Allow"); allow != "GET, HEAD" {
				t.Errorf("%s %s Allow = %q, want \"GET, HEAD\"", method, route, allow)
			}
		}
	}
}

// TestMetricsHandlerServesExposition: the happy path still works after
// the method guard, and a POST to the bare Handler is rejected too.
func TestMetricsHandlerServesExposition(t *testing.T) {
	m := NewMetrics()
	m.Counter("logres_rounds_total").Add(7)
	h := m.Handler()

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("GET = %d, want 200", rr.Code)
	}
	if !strings.Contains(rr.Body.String(), "logres_rounds_total 7") {
		t.Fatalf("exposition missing counter:\n%s", rr.Body.String())
	}
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}

	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest(http.MethodPost, "/metrics", strings.NewReader("x")))
	if rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST = %d, want 405", rr.Code)
	}
}
