package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// readOnly restricts a handler to GET and HEAD, answering anything else
// with 405 and an Allow header. The observability endpoints are pure
// reads; rejecting other methods keeps the mux safe to mount beside
// mutating data-plane routes (a POST routed here by mistake must not be
// silently served as if it were a read).
func readOnly(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet, http.MethodHead:
			h.ServeHTTP(w, r)
		default:
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, http.StatusText(http.StatusMethodNotAllowed), http.StatusMethodNotAllowed)
		}
	})
}

// Handler returns an http.Handler serving the registry in Prometheus
// text exposition format. Only GET and HEAD are served; other methods
// get 405.
func (m *Metrics) Handler() http.Handler {
	return readOnly(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = m.WriteTo(w)
	}))
}

// NewServeMux wires the standard observability endpoints onto one mux:
//
//	/metrics       Prometheus text exposition of m
//	/debug/vars    expvar JSON (publish m with PublishExpvar to include it)
//	/debug/pprof/  the net/http/pprof profiling surface
//
// Every route is GET/HEAD-only (405 otherwise), so the mux can be
// mounted beside mutating data-plane routes. This is what
// `logres -metrics-addr` and `logres-server` serve.
func NewServeMux(m *Metrics) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", m.Handler())
	mux.Handle("/debug/vars", readOnly(expvar.Handler()))
	mux.Handle("/debug/pprof/", readOnly(http.HandlerFunc(pprof.Index)))
	mux.Handle("/debug/pprof/cmdline", readOnly(http.HandlerFunc(pprof.Cmdline)))
	mux.Handle("/debug/pprof/profile", readOnly(http.HandlerFunc(pprof.Profile)))
	mux.Handle("/debug/pprof/symbol", readOnly(http.HandlerFunc(pprof.Symbol)))
	mux.Handle("/debug/pprof/trace", readOnly(http.HandlerFunc(pprof.Trace)))
	return mux
}
