package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler serving the registry in Prometheus
// text exposition format.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = m.WriteTo(w)
	})
}

// NewServeMux wires the standard observability endpoints onto one mux:
//
//	/metrics       Prometheus text exposition of m
//	/debug/vars    expvar JSON (publish m with PublishExpvar to include it)
//	/debug/pprof/  the net/http/pprof profiling surface
//
// This is what `logres -metrics-addr` serves.
func NewServeMux(m *Metrics) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", m.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
