package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metrics is a lock-cheap metrics registry: counters and gauges are
// single atomics, histograms are fixed log₂ buckets of atomics, and the
// registry lock is taken only on first registration of a name. Values
// are published through expvar (PublishExpvar) and rendered as
// Prometheus text exposition format (WriteTo).
//
// Metric names may carry a Prometheus label suffix — e.g.
// `logres_aborts_total{axis="facts"}` — which WriteTo groups into one
// TYPE family per base name.
type Metrics struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a last-value metric.
type Gauge struct{ v atomic.Int64 }

// Set records the current value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the last recorded value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates observations into 65 log₂ buckets (bucket i
// holds values whose bit length is i, i.e. [2^(i-1), 2^i)), giving
// quantile estimates within a factor of two at a fixed, tiny memory
// cost and atomic-add observation.
type Histogram struct {
	buckets [65]atomic.Int64
	sum     atomic.Int64
	count   atomic.Int64
}

// Observe records one value (negative values clamp to zero).
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile estimates the q-quantile (0 < q ≤ 1) as the upper bound of
// the bucket containing it; returns 0 with no observations.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= target {
			if i == 0 {
				return 0
			}
			if i >= 63 {
				return math.MaxInt64
			}
			return (int64(1) << i) - 1
		}
	}
	return math.MaxInt64
}

// Counter returns (registering on first use) the named counter. Panics
// if the name is already registered as a gauge or histogram — a silent
// shadow would split one name across two exposition types.
func (m *Metrics) Counter(name string) *Counter {
	m.mu.RLock()
	c := m.counters[name]
	m.mu.RUnlock()
	if c != nil {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c = m.counters[name]; c == nil {
		m.checkUnregisteredLocked(name, "counter")
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns (registering on first use) the named gauge. Panics on a
// name already registered as a counter or histogram.
func (m *Metrics) Gauge(name string) *Gauge {
	m.mu.RLock()
	g := m.gauges[name]
	m.mu.RUnlock()
	if g != nil {
		return g
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if g = m.gauges[name]; g == nil {
		m.checkUnregisteredLocked(name, "gauge")
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns (registering on first use) the named histogram.
// Panics on a name already registered as a counter or gauge.
func (m *Metrics) Histogram(name string) *Histogram {
	m.mu.RLock()
	h := m.hists[name]
	m.mu.RUnlock()
	if h != nil {
		return h
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if h = m.hists[name]; h == nil {
		m.checkUnregisteredLocked(name, "histogram")
		h = &Histogram{}
		m.hists[name] = h
	}
	return h
}

// checkUnregisteredLocked panics with a clear message when name is
// already registered under a different metric type. Caller holds the
// write lock; the map being registered into has already missed.
func (m *Metrics) checkUnregisteredLocked(name, as string) {
	var existing string
	switch {
	case m.counters[name] != nil:
		existing = "counter"
	case m.gauges[name] != nil:
		existing = "gauge"
	case m.hists[name] != nil:
		existing = "histogram"
	default:
		return
	}
	panic(fmt.Sprintf("obs: metric %q already registered as a %s, cannot re-register as a %s", name, existing, as))
}

// family splits a metric name into its base name (the TYPE family) and
// the optional {label} suffix.
func family(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// splitName splits a metric name into its base family and the bare
// label body: `h{route="x"}` → ("h", `route="x"`), `h` → ("h", "").
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	return name[:i], strings.TrimSuffix(name[i+1:], "}")
}

// sample writes one exposition sample `base+suffix{labels,extra} v`,
// merging the metric's own labels with sample-level labels (le,
// quantile) so suffixes land before the label set as the text format
// requires.
func sample(b *strings.Builder, base, suffix, labels, extra string, v int64) {
	b.WriteString(base)
	b.WriteString(suffix)
	merged := labels
	if extra != "" {
		if merged != "" {
			merged += ","
		}
		merged += extra
	}
	if merged != "" {
		b.WriteString("{")
		b.WriteString(merged)
		b.WriteString("}")
	}
	fmt.Fprintf(b, " %d\n", v)
}

// bucketUpper is the inclusive upper bound of log₂ bucket i as a
// Prometheus le= value: bucket i holds values of bit length i, i.e.
// [2^(i-1), 2^i - 1].
func bucketUpper(i int) string {
	switch {
	case i == 0:
		return "0"
	case i >= 63:
		return "9223372036854775807"
	}
	return fmt.Sprintf("%d", (int64(1)<<i)-1)
}

// WriteTo renders every metric in Prometheus text exposition format:
// counters and gauges one sample per name, histograms with cumulative
// le-bucket `_bucket` samples (log₂ bucket upper bounds, +Inf = count)
// so they aggregate across instances, plus the p50/p95/p99 quantile
// convenience samples and `_sum`/`_count`.
func (m *Metrics) WriteTo(w io.Writer) (int64, error) {
	m.mu.RLock()
	counters := make(map[string]int64, len(m.counters))
	for name, c := range m.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]int64, len(m.gauges))
	for name, g := range m.gauges {
		gauges[name] = g.Value()
	}
	hists := make(map[string]*Histogram, len(m.hists))
	for name, h := range m.hists {
		hists[name] = h
	}
	m.mu.RUnlock()

	var b strings.Builder
	writeScalar := func(vals map[string]int64, typ string) {
		names := make([]string, 0, len(vals))
		for name := range vals {
			names = append(names, name)
		}
		sort.Strings(names)
		lastFamily := ""
		for _, name := range names {
			if f := family(name); f != lastFamily {
				fmt.Fprintf(&b, "# TYPE %s %s\n", f, typ)
				lastFamily = f
			}
			fmt.Fprintf(&b, "%s %d\n", name, vals[name])
		}
	}
	writeScalar(counters, "counter")
	writeScalar(gauges, "gauge")

	histNames := make([]string, 0, len(hists))
	for name := range hists {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	lastFamily := ""
	for _, name := range histNames {
		h := hists[name]
		base, labels := splitName(name)
		if base != lastFamily {
			fmt.Fprintf(&b, "# TYPE %s histogram\n", base)
			lastFamily = base
		}
		// Cumulative le-buckets over the populated log₂ buckets, so
		// scrapes aggregate across instances; the +Inf bucket equals
		// the observation count (clamped monotone against racing
		// observations, which bump the bucket before the count).
		var cum int64
		for i := range h.buckets {
			n := h.buckets[i].Load()
			if n == 0 {
				continue
			}
			cum += n
			sample(&b, base, "_bucket", labels, fmt.Sprintf("le=%q", bucketUpper(i)), cum)
		}
		cnt := h.Count()
		if cum > cnt {
			cnt = cum
		}
		sample(&b, base, "_bucket", labels, `le="+Inf"`, cnt)
		for _, q := range []float64{0.5, 0.95, 0.99} {
			sample(&b, base, "", labels, fmt.Sprintf("quantile=%q", fmt.Sprintf("%g", q)), h.Quantile(q))
		}
		sample(&b, base, "_sum", labels, "", h.Sum())
		sample(&b, base, "_count", labels, "", h.Count())
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// snapshot returns every metric value for expvar exposition.
func (m *Metrics) snapshot() map[string]any {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[string]any, len(m.counters)+len(m.gauges)+len(m.hists))
	for name, c := range m.counters {
		out[name] = c.Value()
	}
	for name, g := range m.gauges {
		out[name] = g.Value()
	}
	for name, h := range m.hists {
		out[name] = map[string]int64{
			"count": h.Count(),
			"sum":   h.Sum(),
			"p50":   h.Quantile(0.5),
			"p95":   h.Quantile(0.95),
			"p99":   h.Quantile(0.99),
		}
	}
	return out
}

// PublishExpvar publishes the registry under the given expvar name
// (e.g. "logres"), visible at /debug/vars. Publishing the same name
// twice is a no-op (expvar forbids re-publication).
func (m *Metrics) PublishExpvar(name string) {
	defer func() { _ = recover() }()
	expvar.Publish(name, expvar.Func(func() any { return m.snapshot() }))
}

// Tracer returns an event adapter that maintains the standard engine
// metrics from the trace stream: round, firing, oid, abort, merge,
// module, and guard-trip counters plus round/merge duration histograms.
// Attach it (usually via Multi, alongside a log sink) to get metrics
// without a second instrumentation path.
func (m *Metrics) Tracer() Tracer { return metricsTracer{m} }

type metricsTracer struct{ m *Metrics }

func (t metricsTracer) Event(ev Event) {
	m := t.m
	switch ev.Kind {
	case KindEvalBegin:
		m.Counter("logres_evals_total").Add(1)
	case KindEvalEnd:
		m.Histogram("logres_eval_duration_ns").Observe(int64(ev.Duration))
		m.Gauge("logres_facts").Set(int64(ev.Total))
	case KindRoundEnd:
		m.Counter("logres_rounds_total").Add(1)
		m.Histogram("logres_round_duration_ns").Observe(int64(ev.Duration))
		m.Gauge("logres_facts").Set(int64(ev.Total))
	case KindRuleFire:
		m.Counter("logres_rule_firings_total").Add(int64(ev.Count))
	case KindOIDInvent:
		m.Counter("logres_oids_invented_total").Add(1)
	case KindMerge:
		m.Counter("logres_merges_total").Add(1)
		m.Histogram("logres_merge_duration_ns").Observe(int64(ev.Duration))
	case KindGuardCheck:
		m.Counter("logres_guard_trips_total").Add(1)
	case KindAbort:
		axis := ev.Axis
		if axis == "" {
			axis = "error"
		}
		m.Counter(fmt.Sprintf("logres_aborts_total{axis=%q}", axis)).Add(1)
	case KindModuleEnd:
		m.Counter("logres_modules_applied_total").Add(1)
		m.Histogram("logres_module_duration_ns").Observe(int64(ev.Duration))
	case KindModuleCommit:
		m.Counter("logres_module_commits_total").Add(1)
	case KindModuleConflict:
		m.Counter("logres_module_conflicts_total").Add(1)
	case KindModuleRetry:
		m.Counter("logres_module_retries_total").Add(1)
	case KindClosureRound:
		m.Counter("logres_closure_rounds_total").Add(1)
	case KindVecKernel:
		m.Counter(fmt.Sprintf("logres_vec_kernel_invocations_total{kernel=%q}", ev.Pred)).Add(int64(ev.Count))
		m.Counter(fmt.Sprintf("logres_vec_kernel_rows_total{kernel=%q}", ev.Pred)).Add(int64(ev.Total))
	case KindParallelDispatch:
		m.Counter("logres_parallel_dispatches_total").Add(1)
	case KindWALAppend:
		m.Counter("logres_wal_appends_total").Add(1)
		m.Counter("logres_wal_bytes_total").Add(int64(ev.Count))
		m.Gauge("logres_wal_size_bytes").Set(int64(ev.Total))
	case KindWALSync:
		m.Counter("logres_wal_fsyncs_total").Add(1)
		m.Histogram("logres_wal_fsync_duration_ns").Observe(int64(ev.Duration))
	case KindWALRecover:
		m.Counter("logres_wal_recoveries_total").Add(1)
		m.Counter("logres_wal_replayed_records_total").Add(int64(ev.Count))
	case KindWALCompact:
		m.Counter("logres_wal_compactions_total").Add(1)
		m.Histogram("logres_wal_compact_duration_ns").Observe(int64(ev.Duration))
	case KindIVMPropagate:
		m.Counter("logres_ivm_propagations_total").Add(1)
		m.Counter("logres_ivm_delta_facts_total").Add(int64(ev.Count))
		m.Histogram("logres_ivm_propagate_duration_ns").Observe(int64(ev.Duration))
		m.Gauge("logres_ivm_facts").Set(int64(ev.Total))
	case KindIVMRebuild:
		m.Counter("logres_ivm_rebuilds_total").Add(1)
		m.Histogram("logres_ivm_rebuild_duration_ns").Observe(int64(ev.Duration))
	case KindSubEmit:
		m.Counter("logres_sub_emits_total").Add(int64(ev.Count))
		m.Counter("logres_sub_slow_drops_total").Add(int64(ev.Total))
	}
}
