package module

import (
	"logres/internal/ast"
	"logres/internal/engine"
	"logres/internal/guard"
	"logres/internal/value"
)

// SnapshotResult is one optimistic application attempt, evaluated
// against a frozen snapshot outside the database lock. It carries
// everything the commit critical section needs: the effective footprint
// to validate, and either a fact-level delta to merge onto the current
// committed state (the concurrent fast path) or a whole-state
// replacement (rule/schema-changing modes, which conflict with every
// concurrent commit anyway).
type SnapshotResult struct {
	// Res is the ordinary Apply result against the snapshot.
	Res *Result
	// Footprint is the effective access set: the static analysis widened
	// by what the run actually touched ($oid$ when identity moved).
	Footprint guard.Footprint
	// Adds and Removes are the extensional delta E1 − E0 and E0 − E1,
	// valid when neither ReadOnly nor Replace is set. Commit order is
	// removes first, then adds.
	Adds, Removes []engine.Fact
	// CounterDelta is the oid-counter advance of the run.
	CounterDelta int64
	// ReadOnly marks an application with no state change (RIDI): commit
	// validates reads but installs nothing.
	ReadOnly bool
	// Replace marks an application whose commit must replace the whole
	// state (rule/schema changes): valid only when nothing committed
	// since the snapshot.
	Replace bool
	// Deferred marks an application whose final instance validation was
	// skipped (ApplyDeferred): the committer must audit consistency and
	// the passive constraints before installing the state.
	Deferred bool
}

// ApplySnapshot applies m to the snapshot state st and packages the
// outcome for optimistic commit. st must be a published snapshot: its
// fact set frozen, never mutated (Apply's clone discipline guarantees
// the application itself cannot touch it).
func ApplySnapshot(st *State, m *ast.Module, mode ast.Mode, opts engine.Options) (*SnapshotResult, error) {
	return applySnapshot(st, m, mode, opts, false)
}

// ApplySnapshotDeferred is ApplySnapshot with deferred validation when
// the application is eligible (CanDeferValidation — exactly the
// delta-committing applications): the result carries Deferred=true and
// the committer must audit the new state before installing it.
// Ineligible applications validate inside Apply as usual.
func ApplySnapshotDeferred(st *State, m *ast.Module, mode ast.Mode, opts engine.Options) (*SnapshotResult, error) {
	return applySnapshot(st, m, mode, opts, true)
}

func applySnapshot(st *State, m *ast.Module, mode ast.Mode, opts engine.Options, allowDefer bool) (*SnapshotResult, error) {
	fp, err := StaticFootprint(st, m, mode, opts)
	if err != nil {
		return nil, err
	}
	deferred := allowDefer && CanDeferValidation(st, m, mode)
	var res *Result
	if deferred {
		res, err = ApplyDeferred(st, m, mode, opts)
	} else {
		res, err = Apply(st, m, mode, opts)
	}
	if err != nil {
		return nil, err
	}
	sr := &SnapshotResult{Res: res, Footprint: *fp, Deferred: deferred}
	switch mode {
	case ast.RIDI:
		sr.ReadOnly = true
		return sr, nil
	case ast.RADI, ast.RDDI:
		sr.Replace = true
		return sr, nil
	}
	// Schema- or rule-changing data variants replace the whole state;
	// the remaining applications — exactly the deferral-eligible ones —
	// commit as fact deltas.
	if !CanDeferValidation(st, m, mode) {
		sr.Replace = true
		return sr, nil
	}

	sr.CounterDelta = res.State.Counter - st.Counter
	sr.Adds, sr.Removes = diffFacts(st.E, res.State.E, &sr.Footprint)

	touchedOID := sr.CounterDelta != 0
	if !touchedOID {
		// Class facts re-binding pre-existing oids (oid unification from
		// non-invented sources) touch object identity without advancing
		// the counter; serialize them through $oid$ so two such writers
		// cannot place one oid in disjoint hierarchies unseen.
		for _, f := range sr.Adds {
			if f.IsClass && f.OID <= value.OID(st.Counter) {
				touchedOID = true
				break
			}
		}
	}
	if touchedOID {
		sr.Footprint.Reads = append(sr.Footprint.Reads, PredOID)
		sr.Footprint.Writes = append(sr.Footprint.Writes, PredOID)
		sr.Footprint.Normalize()
	}
	return sr, nil
}

// diffFacts computes the delta between the snapshot extension e0 and the
// result extension e1. The candidate predicates come from the static
// write analysis; a per-predicate size audit over the full predicate
// union catches any analysis miss (inflationary runs only grow and RDDV
// only shrinks, so a missed write always shows as a size change) and
// falls back to a full diff, widening the footprint with the missed
// predicates.
func diffFacts(e0, e1 *engine.FactSet, fp *guard.Footprint) (adds, removes []engine.Fact) {
	candidates := map[string]bool{}
	if !fp.Universal {
		for _, p := range fp.Writes {
			if !IsPseudoPred(p) {
				candidates[p] = true
			}
		}
		audit := map[string]bool{}
		for _, p := range e0.Preds() {
			audit[p] = true
		}
		for _, p := range e1.Preds() {
			audit[p] = true
		}
		for p := range audit {
			if !candidates[p] && e0.Size(p) != e1.Size(p) {
				// Static analysis missed a write: be conservative.
				fp.Universal = true
				break
			}
		}
	}
	if fp.Universal {
		candidates = map[string]bool{}
		for _, p := range e0.Preds() {
			candidates[p] = true
		}
		for _, p := range e1.Preds() {
			candidates[p] = true
		}
	}
	widened := false
	for p := range candidates {
		touched := false
		for _, f := range e1.Facts(p) {
			if !e0.Has(f) {
				adds = append(adds, f)
				touched = true
			}
		}
		for _, f := range e0.Facts(p) {
			if !e1.Has(f) {
				removes = append(removes, f)
				touched = true
			}
		}
		if touched && !containsStr(fp.Writes, p) {
			fp.Writes = append(fp.Writes, p)
			widened = true
		}
	}
	if widened {
		fp.Normalize()
	}
	return adds, removes
}

func containsStr(s []string, p string) bool {
	for _, x := range s {
		if x == p {
			return true
		}
	}
	return false
}

// CommitDelta merges a validated snapshot delta onto the current
// committed state: clone the committed extension, apply removes then
// adds, advance the counter by the attempt's consumption, and keep the
// committed R/S/Lib (a delta commit never changes them). The returned
// state is freshly built and safe to publish.
func CommitDelta(committed *State, sr *SnapshotResult) *State {
	next := &State{
		E:       committed.E.Clone(),
		R:       committed.R,
		S:       committed.S,
		Counter: committed.Counter + sr.CounterDelta,
		Lib:     committed.Lib,
	}
	for _, f := range sr.Removes {
		next.E.Remove(f)
	}
	for _, f := range sr.Adds {
		next.E.Add(f)
	}
	return next
}

// subtractionChangesRules reports whether removing sub from rules would
// actually shrink the persistent rule store.
func subtractionChangesRules(rules, sub []*ast.Rule) bool {
	return len(subtractRules(rules, sub)) != len(rules)
}
