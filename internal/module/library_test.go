package module

import (
	"strings"
	"testing"

	"logres/internal/ast"
	"logres/internal/parser"
)

func TestLibraryRegisterCall(t *testing.T) {
	st := newState(t, italianSchema)
	st = seed(t, st, `roman(name: "ugo").`)

	lib := NewLibrary()
	mod := parseModule(t, `
module promote.
mode ridv.
rules
  italian(name: X) <- roman(name: X).
end.
`)
	if err := lib.Register(mod); err != nil {
		t.Fatal(err)
	}
	if got := lib.Names(); len(got) != 1 || got[0] != "promote" {
		t.Fatalf("names = %v", got)
	}
	res, err := lib.Call(st, "promote", opts())
	if err != nil {
		t.Fatal(err)
	}
	if res.State.E.Size("italian") != 1 {
		t.Fatalf("italian = %d", res.State.E.Size("italian"))
	}
	if _, err := lib.Call(st, "nosuch", opts()); err == nil || !strings.Contains(err.Error(), "promote") {
		t.Fatalf("unknown module call: %v", err)
	}
}

func TestLibraryAnonymousRejected(t *testing.T) {
	lib := NewLibrary()
	if err := lib.Register(&ast.Module{}); err == nil {
		t.Fatal("anonymous module registered")
	}
}

func TestLibraryRedefinitionAndRemove(t *testing.T) {
	lib := NewLibrary()
	m1 := parseModule(t, "module m. mode ridi. end.")
	m2 := parseModule(t, "module m. mode radv. end.")
	if err := lib.Register(m1); err != nil {
		t.Fatal(err)
	}
	if err := lib.Register(m2); err != nil {
		t.Fatal(err)
	}
	if len(lib.Names()) != 1 {
		t.Fatal("redefinition duplicated the name")
	}
	got, _ := lib.Get("m")
	if got.Mode != ast.RADV {
		t.Fatal("redefinition kept the old module")
	}
	if !lib.Remove("m") || lib.Remove("m") {
		t.Fatal("Remove semantics wrong")
	}
}

func TestLibrarySourcesRoundTrip(t *testing.T) {
	lib := NewLibrary()
	src := `
module football_update.
mode radv.
semantics noninflationary.
domains EXTRA = string;
rules
  italian(name: X) <- roman(name: X).
  not roman(name: "x") <- roman(name: "x").
end.
`
	if err := lib.Register(parseModule(t, src)); err != nil {
		t.Fatal(err)
	}
	sources := lib.Sources()
	if len(sources) != 1 {
		t.Fatalf("sources = %d", len(sources))
	}
	lib2 := NewLibrary()
	if err := lib2.LoadSources(sources); err != nil {
		t.Fatalf("%v\nsource:\n%s", err, sources[0])
	}
	m, ok := lib2.Get("football_update")
	if !ok {
		t.Fatal("module lost in round trip")
	}
	if m.Mode != ast.RADV || !m.NonInflationary || len(m.Rules) != 2 {
		t.Fatalf("module corrupted: %+v", m)
	}
	if !m.Schema.IsDomain("extra") {
		t.Fatal("module schema lost")
	}
}

func TestRenderModuleGoal(t *testing.T) {
	m := parseModule(t, `
module q.
rules
  italian(name: "x").
goal
  ?- italian(name: X), X != "y".
end.
`)
	out := RenderModule(m)
	re, err := parser.ParseModule(out)
	if err != nil {
		t.Fatalf("%v\nrendered:\n%s", err, out)
	}
	if len(re.Goal) != 2 {
		t.Fatalf("goal lost: %v", re.Goal)
	}
}

func TestLibraryCloneIndependence(t *testing.T) {
	lib := NewLibrary()
	_ = lib.Register(parseModule(t, "module a. end."))
	cp := lib.Clone()
	_ = cp.Register(parseModule(t, "module b. end."))
	if len(lib.Names()) != 1 || len(cp.Names()) != 2 {
		t.Fatal("clone shares storage")
	}
}
