package module

import (
	"strings"

	"logres/internal/ast"
	"logres/internal/engine"
	"logres/internal/guard"
	"logres/internal/types"
)

// Pseudo-predicates name the non-extensional parts of the database state
// in footprints, so schema evolution, rule changes, and oid invention
// participate in conflict detection like ordinary predicates.
const (
	// PredSchema is the type-equation store S. Every application reads
	// it (compilation resolves predicates against it); schema-changing
	// applications write it.
	PredSchema = "$schema$"
	// PredRules is the persistent rule store R.
	PredRules = "$rules$"
	// PredOID is the oid-invention counter. Applications that advance it
	// (or re-bind pre-existing oids into class heads) read and write it,
	// so identity-touching modules always serialize against each other.
	PredOID = "$oid$"
)

// IsPseudoPred reports whether name is a footprint pseudo-predicate
// rather than a FactSet predicate. Data-function stores ("$fn$…") are
// real FactSet predicates, not pseudo-predicates.
func IsPseudoPred(name string) bool {
	switch name {
	case PredSchema, PredRules, PredOID:
		return true
	}
	return false
}

// StaticFootprint computes the conservative predicate-level access set
// of applying module m to state st with the given mode — before running
// it. The runtime delta can only narrow it (ApplySnapshot widens the
// write set with $oid$ when identity is actually touched).
//
// The analysis layers mode semantics over the engine's per-program
// RuleFootprint:
//
//   - every application reads $schema$ and $rules$ (compilation and the
//     instance check depend on both);
//   - rule- and schema-changing modes write $rules$/$schema$;
//   - inventive programs read and write $oid$;
//   - writers read the classes their written predicates reference
//     (referential integrity couples a writer to its targets);
//   - deleters read every predicate that can reference the deleted
//     classes (shrinking an extension can invalidate references held
//     elsewhere);
//   - a non-empty persistent rule set couples every writer into its
//     footprint (a concurrent write can feed a persistent rule whose
//     derived facts neither applier saw alone);
//   - non-inflationary semantics and active-domain enumeration read the
//     whole extension (Universal).
func StaticFootprint(st *State, m *ast.Module, mode ast.Mode, opts engine.Options) (*guard.Footprint, error) {
	reads := map[string]bool{PredSchema: true, PredRules: true}
	writes := map[string]bool{}
	fp := &guard.Footprint{}

	// Mirror Apply's schema evolution so the analysis resolves against
	// the schema the module actually runs under.
	s0 := st.S.Clone()
	var s1 *types.Schema
	var err error
	if mode == ast.RDDV || mode == ast.RDDI {
		s1 = s0.Subtract(m.Schema)
	} else {
		s1, err = s0.Union(m.Schema)
		if err != nil {
			return nil, err
		}
	}
	if err := s1.Validate(); err != nil {
		return nil, err
	}

	schemaChanged := m.Schema != nil && (len(m.Schema.Names()) > 0 || len(m.Schema.IsaEdges()) > 0)
	if schemaChanged && mode != ast.RIDI {
		writes[PredSchema] = true
	}
	switch mode {
	case ast.RADI, ast.RDDI:
		writes[PredRules] = true
	case ast.RADV:
		if len(m.Rules) > 0 {
			writes[PredRules] = true
		}
	case ast.RDDV:
		// Subtracting rules that are not in R is a no-op on the rule
		// store; only an effective removal writes $rules$.
		if subtractionChangesRules(st.R, m.Rules) {
			writes[PredRules] = true
		}
	}

	addAll := func(set map[string]bool, preds []string) {
		for _, p := range preds {
			set[p] = true
		}
	}

	// Persistent program per mode (the rule set the final instance check
	// runs). Its whole footprint counts as reads: a concurrent write into
	// any predicate a persistent rule touches can change the derived
	// instance this application validated against.
	persistent := st.R
	switch mode {
	case ast.RADI, ast.RADV:
		persistent = append(append([]*ast.Rule{}, st.R...), m.Rules...)
	case ast.RDDI, ast.RDDV:
		persistent = subtractRules(append([]*ast.Rule{}, st.R...), m.Rules)
	case ast.RIDI:
		persistent = append(append([]*ast.Rule{}, st.R...), m.Rules...)
	}
	if len(persistent) > 0 {
		progR, err := engine.Compile(s1, persistent, opts)
		if err != nil {
			return nil, err
		}
		rfR := progR.Footprint()
		addAll(reads, rfR.Reads)
		addAll(reads, rfR.Writes)
		if rfR.Universal {
			fp.Universal = true
		}
	}

	switch mode {
	case ast.RIDI:
		// Read-only: the combined-program reads above are the footprint.
	case ast.RADI, ast.RDDI:
		// E untouched; the $rules$/$schema$ writes and combined-program
		// reads cover it.
	default:
		progM, err := engine.Compile(s1, m.Rules, opts)
		if err != nil {
			return nil, err
		}
		rfM := progM.Footprint()
		addAll(reads, rfM.Reads)
		addAll(writes, rfM.Writes)
		if rfM.Universal {
			fp.Universal = true
		}
		if rfM.Inventive {
			reads[PredOID] = true
			writes[PredOID] = true
		}
		// Writers read their reference targets; deleters read their
		// potential referrers.
		deletes := rfM.Deletes
		if mode == ast.RDDV {
			// The whole module-derived set EM is subtracted from E.
			deletes = rfM.Writes
		}
		for _, w := range rfM.Writes {
			addAll(reads, referencedClasses(s1, w))
		}
		for _, d := range deletes {
			if s1.IsClass(d) {
				addAll(reads, predsReferencing(s1, d))
			}
		}
	}

	if m.NonInflationary || opts.NonInflationary {
		fp.Universal = true
	}

	for p := range reads {
		fp.Reads = append(fp.Reads, p)
	}
	for p := range writes {
		fp.Writes = append(fp.Writes, p)
	}
	fp.Normalize()
	return fp, nil
}

// storeDecl resolves a footprint predicate name — a declared predicate
// or a "$fn$"-prefixed function store — to its schema declaration.
func storeDecl(s *types.Schema, pred string) (*types.Decl, bool) {
	if fn, ok := strings.CutPrefix(pred, engine.FunctionStore("")); ok {
		return lookupDecl(s, fn)
	}
	return lookupDecl(s, pred)
}

func lookupDecl(s *types.Schema, name string) (*types.Decl, bool) {
	d, ok := s.Lookup(name)
	return d, ok
}

// referencedClasses returns the classes the predicate's stored values can
// reference: Named class types reachable through its type structure
// (tuples, collections, and domain expansions; class names are reference
// boundaries and are not entered).
func referencedClasses(s *types.Schema, pred string) []string {
	d, ok := storeDecl(s, pred)
	if !ok {
		return nil
	}
	refs := map[string]bool{}
	visited := map[string]bool{}
	var walk func(t types.Type)
	walk = func(t types.Type) {
		switch x := t.(type) {
		case types.Named:
			dd, ok := s.Lookup(x.Name)
			if !ok {
				return
			}
			switch dd.Kind {
			case types.DeclClass:
				refs[x.Name] = true
			case types.DeclDomain:
				if !visited[x.Name] {
					visited[x.Name] = true
					walk(dd.RHS)
				}
			}
		case types.Tuple:
			for _, f := range x.Fields {
				walk(f.Type)
			}
		case types.Set:
			walk(x.Elem)
		case types.Multiset:
			walk(x.Elem)
		case types.Sequence:
			walk(x.Elem)
		}
	}
	switch d.Kind {
	case types.DeclFunction:
		if d.Arg != nil {
			walk(d.Arg)
		}
		walk(d.Result)
	default:
		walk(d.RHS)
	}
	out := make([]string, 0, len(refs))
	for c := range refs {
		out = append(out, c)
	}
	return out
}

// predsReferencing returns every predicate (class, association, or
// function store) whose values can reference class c — the read set a
// deleter of c must carry.
func predsReferencing(s *types.Schema, c string) []string {
	var out []string
	for _, name := range s.Names() {
		d, _ := s.Lookup(name)
		if d == nil || d.Kind == types.DeclDomain {
			continue
		}
		store := name
		if d.Kind == types.DeclFunction {
			store = engine.FunctionStore(name)
		}
		for _, r := range referencedClasses(s, store) {
			if r == c {
				out = append(out, store)
				break
			}
		}
	}
	return out
}
