package module

import (
	"math/rand"
	"testing"
	"testing/quick"

	"logres/internal/ast"
)

// Evolution property (§1: "the evolution of a LOGRES database is obtained
// through sequences of applications of update modules"): applying a random
// sequence of modules — some of which are rejected — must always leave a
// state whose instance is consistent; a rejected application must leave
// the previous state byte-for-byte usable.

const evoSchema = `
domains NAME = string;
classes PERSON = (name: NAME);
associations
  LIKES = (who: PERSON, what: NAME);
  TAG = (t: NAME);
`

// evoModules is a pool of modules: inserts, object creation, rule
// addition/deletion, deletions, and one module that is always rejected
// (violated denial).
func evoModules(t *testing.T) []*ast.Module {
	t.Helper()
	sources := []string{
		`
mode ridv.
rules
  tag(t: "a"). tag(t: "b").
end.
`, `
mode ridv.
rules
  person(self: P, name: N) <- tag(t: N).
end.
`, `
mode ridv.
rules
  likes(who: P, what: "logic") <- person(self: P).
end.
`, `
mode radi.
rules
  tag(t: N) <- person(name: N).
end.
`, `
mode rddi.
rules
  tag(t: N) <- person(name: N).
end.
`, `
mode ridv.
rules
  not likes(L) <- likes(L).
end.
`, `
mode radi.
rules
  <- tag(t: "a"), tag(t: "b").
end.
`, // rejected once both tags exist
	}
	out := make([]*ast.Module, len(sources))
	for i, src := range sources {
		out[i] = parseModule(t, src)
	}
	return out
}

func TestEvolutionProperty(t *testing.T) {
	mods := evoModules(t)
	f := func(seed int64, steps uint8) bool {
		r := rand.New(rand.NewSource(seed))
		st := newState(t, evoSchema)
		n := int(steps%10) + 3
		for i := 0; i < n; i++ {
			m := mods[r.Intn(len(mods))]
			res, err := ApplyDeclared(st, m, opts())
			if err != nil {
				// Rejected: the old state must still yield a consistent
				// instance.
				if _, _, err2 := st.Instance(opts()); err2 != nil {
					t.Logf("state corrupted after rejection: %v (rejection was: %v)", err2, err)
					return false
				}
				continue
			}
			st = res.State
			if _, _, err := st.Instance(opts()); err != nil {
				t.Logf("accepted state inconsistent: %v", err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestEvolutionDeterministic(t *testing.T) {
	// The same module sequence applied twice yields equal states.
	mods := evoModules(t)
	apply := func() *State {
		st := newState(t, evoSchema)
		for _, i := range []int{0, 1, 2, 3, 5, 1} {
			res, err := ApplyDeclared(st, mods[i], opts())
			if err != nil {
				continue
			}
			st = res.State
		}
		return st
	}
	a, b := apply(), apply()
	if !a.E.Equal(b.E) {
		t.Fatalf("states diverge:\n%v\nvs\n%v", a.E.Preds(), b.E.Preds())
	}
	if a.Counter != b.Counter {
		t.Fatalf("counters diverge: %d vs %d", a.Counter, b.Counter)
	}
}

func TestEvolutionLongChain(t *testing.T) {
	// A long deterministic chain: create objects, derive, materialize,
	// delete, re-create — exercising counter stability.
	st := newState(t, evoSchema)
	mods := evoModules(t)
	sequence := []int{0, 1, 2, 5, 1, 2, 3, 4, 0}
	for step, i := range sequence {
		res, err := ApplyDeclared(st, mods[i], opts())
		if err != nil {
			t.Fatalf("step %d (module %d): %v", step, i, err)
		}
		st = res.State
	}
	if st.E.Size("person") == 0 {
		t.Fatal("evolution lost all objects")
	}
	// Counters only grow.
	if st.Counter <= 0 {
		t.Fatalf("counter = %d", st.Counter)
	}
}
