package module

import (
	"strings"
	"testing"

	"logres/internal/ast"
	"logres/internal/engine"
	"logres/internal/guard"
)

const footprintSchema = `
classes
  person = (name: string);
  emp = (person, sal: integer);
  emp isa person;
associations
  works = (who: person, dept: string);
  orders = (id: integer);
  audit = (id: integer);
`

func has(s []string, p string) bool {
	for _, x := range s {
		if x == p {
			return true
		}
	}
	return false
}

func staticFP(t *testing.T, st *State, src string, mode ast.Mode) *engineFP {
	t.Helper()
	m := parseModule(t, src)
	fp, err := StaticFootprint(st, m, mode, opts())
	if err != nil {
		t.Fatal(err)
	}
	return &engineFP{fp.Reads, fp.Writes, fp.Universal}
}

type engineFP struct {
	Reads, Writes []string
	Universal     bool
}

func TestStaticFootprintDataVariant(t *testing.T) {
	st := newState(t, footprintSchema)
	fp := staticFP(t, st, `
mode ridv.
rules
  audit(id: X) <- orders(id: X).
end.
`, ast.RIDV)
	if !has(fp.Reads, "orders") {
		t.Fatalf("body predicate not read: %+v", fp)
	}
	if !has(fp.Writes, "audit") {
		t.Fatalf("head predicate not written: %+v", fp)
	}
	if has(fp.Writes, "orders") {
		t.Fatalf("read-only predicate written: %+v", fp)
	}
	if !has(fp.Reads, PredSchema) || !has(fp.Reads, PredRules) {
		t.Fatalf("pseudo-predicate reads missing: %+v", fp)
	}
	if has(fp.Writes, PredRules) {
		t.Fatalf("RIDV must not write $rules$: %+v", fp)
	}
	if fp.Universal {
		t.Fatalf("positive program marked universal: %+v", fp)
	}
}

func TestStaticFootprintIsaClosureWidensWrites(t *testing.T) {
	st := newState(t, footprintSchema)
	fp := staticFP(t, st, `
mode ridv.
rules
  emp(name: "ann", sal: 1).
end.
`, ast.RIDV)
	// Writing the subclass writes the superclass through the generated
	// isa-propagation rule.
	if !has(fp.Writes, "emp") || !has(fp.Writes, "person") {
		t.Fatalf("isa closure missing: %+v", fp)
	}
}

func TestStaticFootprintReferentialReads(t *testing.T) {
	st := newState(t, footprintSchema)
	fp := staticFP(t, st, `
mode ridv.
rules
  works(who: X, dept: "dev") <- person(self: X).
end.
`, ast.RIDV)
	// A writer of works references class person: integrity couples it to
	// deleters of person.
	if !has(fp.Reads, "person") {
		t.Fatalf("referenced class not read: %+v", fp)
	}
}

func TestStaticFootprintDeleterReadsReferencingPreds(t *testing.T) {
	st := newState(t, footprintSchema)
	fp := staticFP(t, st, `
mode rddv.
rules
  person(name: "bob").
end.
`, ast.RDDV)
	// Deleting person facts can invalidate references held in works.
	if !has(fp.Reads, "works") {
		t.Fatalf("referencing predicate not read by deleter: %+v", fp)
	}
}

func TestStaticFootprintRuleChangeWritesRules(t *testing.T) {
	st := newState(t, footprintSchema)
	fp := staticFP(t, st, `
mode radv.
rules
  audit(id: X) <- orders(id: X).
end.
`, ast.RADV)
	if !has(fp.Writes, PredRules) {
		t.Fatalf("RADV must write $rules$: %+v", fp)
	}
}

func TestStaticFootprintNonInflationaryIsUniversal(t *testing.T) {
	st := newState(t, footprintSchema)
	fp := staticFP(t, st, `
mode ridv.
semantics noninflationary.
rules
  audit(id: X) <- orders(id: X).
end.
`, ast.RIDV)
	if !fp.Universal {
		t.Fatalf("non-inflationary module must read universally: %+v", fp)
	}
}

func TestStaticFootprintInventiveTouchesOID(t *testing.T) {
	st := newState(t, footprintSchema)
	fp := staticFP(t, st, `
mode ridv.
rules
  person(name: X) <- orders(id: Y), X = "p".
end.
`, ast.RIDV)
	if !has(fp.Writes, PredOID) || !has(fp.Reads, PredOID) {
		t.Fatalf("inventive module must read+write $oid$: %+v", fp)
	}
}

func TestApplySnapshotDeltaMatchesApply(t *testing.T) {
	st := newState(t, footprintSchema)
	st = seed(t, st, `orders(id: 1). orders(id: 2).`)
	st.E.Freeze()

	m := parseModule(t, `
mode ridv.
rules
  audit(id: X) <- orders(id: X).
  orders(id: 3).
end.
`)
	sr, err := ApplySnapshot(st, m, ast.RIDV, opts())
	if err != nil {
		t.Fatal(err)
	}
	if sr.Replace || sr.ReadOnly {
		t.Fatalf("plain RIDV should delta-commit: %+v", sr)
	}
	// Delta: audit(1), audit(2), audit(3), orders(3).
	if len(sr.Adds) != 4 || len(sr.Removes) != 0 {
		t.Fatalf("adds=%d removes=%d", len(sr.Adds), len(sr.Removes))
	}
	// Replaying the delta on the snapshot reproduces Apply's result.
	replay := CommitDelta(st, sr)
	if !replay.E.Equal(sr.Res.State.E) {
		t.Fatal("CommitDelta does not reproduce the applied state")
	}
	if replay.Counter != sr.Res.State.Counter {
		t.Fatalf("counter: %d vs %d", replay.Counter, sr.Res.State.Counter)
	}
	// The snapshot itself is untouched.
	if st.E.Size("orders") != 2 || st.E.Size("audit") != 0 {
		t.Fatal("snapshot mutated")
	}
}

func TestApplySnapshotRDDVRemoves(t *testing.T) {
	st := newState(t, footprintSchema)
	st = seed(t, st, `orders(id: 1). orders(id: 2). audit(id: 1).`)
	st.E.Freeze()

	m := parseModule(t, `
mode rddv.
rules
  orders(id: 1).
end.
`)
	sr, err := ApplySnapshot(st, m, ast.RDDV, opts())
	if err != nil {
		t.Fatal(err)
	}
	if sr.Replace {
		t.Fatalf("rule-free RDDV should delta-commit: %+v", sr)
	}
	if len(sr.Removes) != 1 || sr.Removes[0].Pred != "orders" {
		t.Fatalf("removes = %+v", sr.Removes)
	}
	replay := CommitDelta(st, sr)
	if !replay.E.Equal(sr.Res.State.E) {
		t.Fatal("CommitDelta does not reproduce the deletion")
	}
}

func TestApplySnapshotSchemaChangeReplaces(t *testing.T) {
	st := newState(t, footprintSchema)
	st.E.Freeze()
	m := parseModule(t, `
mode ridv.
associations
  extra = (n: integer);
rules
  extra(n: 1).
end.
`)
	sr, err := ApplySnapshot(st, m, ast.RIDV, opts())
	if err != nil {
		t.Fatal(err)
	}
	if !sr.Replace {
		t.Fatal("schema-changing module must replace the whole state")
	}
	if !has(sr.Footprint.Writes, PredSchema) {
		t.Fatalf("schema write missing: %+v", sr.Footprint)
	}
}

func TestApplySnapshotRIDIReadOnly(t *testing.T) {
	st := newState(t, footprintSchema)
	st = seed(t, st, `orders(id: 7).`)
	st.E.Freeze()
	m := parseModule(t, `
goal
  ?- orders(id: X).
end.
`)
	sr, err := ApplySnapshot(st, m, ast.RIDI, opts())
	if err != nil {
		t.Fatal(err)
	}
	if !sr.ReadOnly {
		t.Fatal("RIDI must be read-only")
	}
	if sr.Res.Answer == nil || len(sr.Res.Answer.Rows) != 1 {
		t.Fatalf("answer = %+v", sr.Res.Answer)
	}
	if len(sr.Footprint.Writes) != 0 {
		t.Fatalf("read-only footprint has writes: %+v", sr.Footprint)
	}
}

func TestFootprintsOfDisjointModulesAreDisjoint(t *testing.T) {
	st := newState(t, footprintSchema)
	a := staticFP(t, st, `
mode ridv.
rules
  orders(id: 1).
end.
`, ast.RIDV)
	b := staticFP(t, st, `
mode ridv.
rules
  audit(id: 1).
end.
`, ast.RIDV)
	fpA := guard.Footprint{Reads: a.Reads, Writes: a.Writes, Universal: a.Universal}
	fpB := guard.Footprint{Reads: b.Reads, Writes: b.Writes, Universal: b.Universal}
	if p, hit := fpA.Overlaps(fpB); hit {
		t.Fatalf("disjoint modules conflict on %q\nA: %s\nB: %s", p, fpA, fpB)
	}
	if p, hit := fpB.Overlaps(fpA); hit {
		t.Fatalf("disjoint modules conflict on %q (reverse)", p)
	}
}

func TestEngineFootprintChaining(t *testing.T) {
	st := newState(t, footprintSchema)
	// b <- a, c <- b: writing a chains into b and c.
	m := parseModule(t, `
mode ridv.
rules
  orders(id: 1).
  audit(id: X) <- orders(id: X).
end.
`)
	prog, err := engine.Compile(st.S, m.Rules, opts())
	if err != nil {
		t.Fatal(err)
	}
	rf := prog.Footprint()
	if !has(rf.Writes, "orders") || !has(rf.Writes, "audit") {
		t.Fatalf("chained writes missing: %+v", rf)
	}
	if rf.Universal || rf.Inventive {
		t.Fatalf("flags wrong: %+v", rf)
	}
	if strings.Join(rf.Deletes, ",") != "" {
		t.Fatalf("deletes = %v", rf.Deletes)
	}
}
