// Package module implements §4 of the paper: database states (E, R, S),
// LOGRES modules (R_M, S_M, G_M), and the six application modes RIDI,
// RADI, RDDI, RIDV, RADV, RDDV with their exact state-transition and
// consistency-or-reject semantics.
package module

import (
	"fmt"
	"runtime/debug"
	"time"

	"logres/internal/ast"
	"logres/internal/engine"
	"logres/internal/guard"
	"logres/internal/instance"
	"logres/internal/obs"
	"logres/internal/types"
)

// State is a LOGRES database state: the triple (E, R, S) of extensional
// facts, persistent rules and schema, plus the oid-invention counter. The
// database *instance* is derived by applying R to E (§4.2) — a predicate
// may be defined partly extensionally and partly intensionally.
type State struct {
	E       *engine.FactSet
	R       []*ast.Rule
	S       *types.Schema
	Counter int64
	// Lib is the registry of named modules stored with the database (the
	// §5 "methods" direction); it evolves outside the (E, R, S) triple.
	Lib *Library
}

// NewState returns an empty consistent state over a schema.
func NewState(schema *types.Schema) *State {
	return &State{E: engine.NewFactSet(), S: schema, Lib: NewLibrary()}
}

// Clone returns an independent copy of the state.
func (st *State) Clone() *State {
	lib := st.Lib
	if lib != nil {
		lib = lib.Clone()
	}
	return &State{
		E:       st.E.Clone(),
		R:       append([]*ast.Rule{}, st.R...),
		S:       st.S.Clone(),
		Counter: st.Counter,
		Lib:     lib,
	}
}

// Instance computes the database instance I such that (E, I) ∈ 𝒯(R):
// the persistent rules applied to the extensional facts under the
// inflationary semantics. It verifies Definition 4 consistency and the
// passive constraints; an inconsistent instance is an error (the mapping
// M is partial, §4.1).
func (st *State) Instance(opts engine.Options) (_ *engine.FactSet, _ *instance.Instance, err error) {
	defer shieldPanic(&err)
	prog, err := engine.Compile(st.S, st.R, opts)
	if err != nil {
		return nil, nil, err
	}
	counter := st.Counter
	f, err := prog.Run(st.E, &counter)
	if err != nil {
		return nil, nil, err
	}
	// Note: the advanced counter is NOT written back to st — Instance is a
	// pure read (oids invented while deriving the instance are not part of
	// the persistent state), which lets Database readers share a lock.
	in := engine.ToInstance(f, st.S, counter)
	if err := in.CheckConsistency(); err != nil {
		return nil, nil, fmt.Errorf("module: instance inconsistent: %w", err)
	}
	if err := prog.CheckDenials(f); err != nil {
		return nil, nil, err
	}
	return f, in, nil
}

// Result is the outcome of a module application: the new database state
// (identical to the input state for data/rule-invariant aspects) and, for
// the data-invariant modes, the goal answer.
type Result struct {
	State    *State
	Instance *instance.Instance
	Answer   *engine.Answer
}

// Apply applies module m to state st with the given mode. It never mutates
// st: on success the result carries the new state; on rejection
// (inconsistent new instance) the error describes the violation and the
// original state remains valid. mode overrides the module's declared
// default; pass m.Mode (or use ApplyDeclared) to honour the declaration.
func Apply(st *State, m *ast.Module, mode ast.Mode, opts engine.Options) (_ *Result, err error) {
	// Application is all-or-nothing: every mode works on a clone of st, so
	// on any abort — budget, cancellation, or a panic converted here — the
	// caller's state is bit-identical to its pre-application snapshot.
	defer shieldPanic(&err)
	if t := opts.Tracer; t != nil {
		t.Event(obs.Event{Kind: obs.KindModuleBegin, Pred: m.Name, Detail: mode.String(),
			Count: len(m.Rules)})
		start := time.Now()
		defer func() {
			ev := obs.Event{Kind: obs.KindModuleEnd, Pred: m.Name, Detail: mode.String(),
				Duration: time.Since(start)}
			if err != nil {
				ev.Detail = mode.String() + ": " + err.Error()
			}
			t.Event(ev)
		}()
	}
	if !mode.HasGoal() && len(m.Goal) > 0 {
		return nil, fmt.Errorf("module: mode %s does not admit a goal (§4.1)", mode)
	}
	if m.NonInflationary {
		// §1: modules are parametric in the semantics of their rules.
		opts.NonInflationary = true
	}
	switch mode {
	case ast.RIDI:
		return applyRIDI(st, m, opts)
	case ast.RADI:
		return applyRuleChange(st, m, opts, true)
	case ast.RDDI:
		return applyRuleChange(st, m, opts, false)
	case ast.RIDV:
		return applyDataVariant(st, m, opts, ast.RIDV, false)
	case ast.RADV:
		return applyDataVariant(st, m, opts, ast.RADV, false)
	case ast.RDDV:
		return applyDataVariant(st, m, opts, ast.RDDV, false)
	}
	return nil, fmt.Errorf("module: unknown mode %v", mode)
}

// CanDeferValidation reports whether applying m to st with mode is
// eligible for deferred validation: a data-variant application that
// changes neither the schema nor the persistent rules, so the new
// state differs from st only in (E, Counter). For such applications a
// caller maintaining the derived instance incrementally can skip the
// from-scratch instance computation inside Apply and audit consistency
// itself at commit time (ApplyDeferred). The predicate agrees exactly
// with the delta/Replace split of ApplySnapshot: eligible applications
// are the ones that would take the delta path.
func CanDeferValidation(st *State, m *ast.Module, mode ast.Mode) bool {
	switch mode {
	case ast.RIDV, ast.RADV, ast.RDDV:
	default:
		return false
	}
	if m.Schema != nil && (len(m.Schema.Names()) > 0 || len(m.Schema.IsaEdges()) > 0) {
		return false
	}
	switch mode {
	case ast.RADV:
		if len(m.Rules) > 0 {
			return false
		}
	case ast.RDDV:
		if subtractionChangesRules(st.R, m.Rules) {
			return false
		}
	}
	return true
}

// ApplyDeferred is Apply with the final instance validation skipped:
// the Result carries the new state but a nil Instance, and the caller
// is responsible for verifying Definition 4 consistency and the
// passive constraints against the new state before committing it. Only
// legal when CanDeferValidation holds for the same arguments.
func ApplyDeferred(st *State, m *ast.Module, mode ast.Mode, opts engine.Options) (_ *Result, err error) {
	defer shieldPanic(&err)
	if t := opts.Tracer; t != nil {
		t.Event(obs.Event{Kind: obs.KindModuleBegin, Pred: m.Name, Detail: mode.String(),
			Count: len(m.Rules)})
		start := time.Now()
		defer func() {
			ev := obs.Event{Kind: obs.KindModuleEnd, Pred: m.Name, Detail: mode.String(),
				Duration: time.Since(start)}
			if err != nil {
				ev.Detail = mode.String() + ": " + err.Error()
			}
			t.Event(ev)
		}()
	}
	if !CanDeferValidation(st, m, mode) {
		return nil, fmt.Errorf("module: mode %s application is not eligible for deferred validation", mode)
	}
	if !mode.HasGoal() && len(m.Goal) > 0 {
		return nil, fmt.Errorf("module: mode %s does not admit a goal (§4.1)", mode)
	}
	if m.NonInflationary {
		opts.NonInflationary = true
	}
	return applyDataVariant(st, m, opts, mode, true)
}

// ApplyDeclared applies the module with its declared mode (RIDI when none
// was declared).
func ApplyDeclared(st *State, m *ast.Module, opts engine.Options) (*Result, error) {
	return Apply(st, m, m.Mode, opts)
}

// applyRIDI — Rule Invariant, Data Invariant: an ordinary query. S_M and
// R_M are added temporarily, the goal is evaluated over R0 ∪ RM against
// E0, and the state does not change.
func applyRIDI(st *State, m *ast.Module, opts engine.Options) (*Result, error) {
	work := st.Clone()
	s1, err := work.S.Union(m.Schema)
	if err != nil {
		return nil, err
	}
	if err := s1.Validate(); err != nil {
		return nil, err
	}
	work.S = s1
	work.R = append(work.R, m.Rules...)
	f, in, err := work.Instance(opts)
	if err != nil {
		return nil, err
	}
	res := &Result{State: st, Instance: in}
	if len(m.Goal) > 0 {
		prog, err := engine.Compile(work.S, work.R, opts)
		if err != nil {
			return nil, err
		}
		ans, err := prog.Query(f, m.Goal)
		if err != nil {
			return nil, err
		}
		res.Answer = ans
	}
	return res, nil
}

// applyRuleChange — RADI adds (RDDI deletes) rules and type equations in
// the persistent state; E is untouched. The new state must yield a
// consistent instance or the update is rejected.
func applyRuleChange(st *State, m *ast.Module, opts engine.Options, add bool) (*Result, error) {
	next := st.Clone()
	if add {
		s1, err := next.S.Union(m.Schema)
		if err != nil {
			return nil, err
		}
		next.S = s1
		next.R = append(next.R, m.Rules...)
	} else {
		next.S = next.S.Subtract(m.Schema)
		next.R = subtractRules(next.R, m.Rules)
	}
	if err := next.S.Validate(); err != nil {
		return nil, fmt.Errorf("module: rejected, schema invalid: %w", err)
	}
	f, in, err := next.Instance(opts)
	if err != nil {
		return nil, fmt.Errorf("module: rejected: %w", err)
	}
	res := &Result{State: next, Instance: in}
	if len(m.Goal) > 0 {
		prog, err := engine.Compile(next.S, next.R, opts)
		if err != nil {
			return nil, err
		}
		ans, err := prog.Query(f, m.Goal)
		if err != nil {
			return nil, err
		}
		res.Answer = ans
	}
	return res, nil
}

// applyDataVariant — the three EDB-updating modes. E1 is computed by
// applying the update rules R_M to E0 (with the active constraints
// generated from the schema); the persistent rules evolve per mode. No
// goal answer is provided (§4.1). With deferValidation the final
// instance computation and audit are skipped (Result.Instance is nil)
// and the caller must validate before committing.
func applyDataVariant(st *State, m *ast.Module, opts engine.Options, mode ast.Mode, deferValidation bool) (*Result, error) {
	next := st.Clone()
	var s1 *types.Schema
	var err error
	switch mode {
	case ast.RDDV:
		s1 = next.S.Subtract(m.Schema)
	default: // RIDV adds S_M(EDB); RADV adds all of S_M. We add all of
		// S_M in both cases: the paper's S_M(EDB) is the subset describing
		// new EDB types, and adding unused equations is harmless.
		s1, err = next.S.Union(m.Schema)
		if err != nil {
			return nil, err
		}
	}
	if err := s1.Validate(); err != nil {
		return nil, fmt.Errorf("module: rejected, schema invalid: %w", err)
	}

	switch mode {
	case ast.RIDV:
		// Rules unchanged.
	case ast.RADV:
		next.R = append(next.R, m.Rules...)
	case ast.RDDV:
		next.R = subtractRules(next.R, m.Rules)
	}

	if mode == ast.RDDV {
		// E1 = E0 − EM, where EM is the instance of (∅, R_M).
		prog, err := engine.Compile(s1, m.Rules, opts)
		if err != nil {
			return nil, err
		}
		counter := next.Counter
		em, err := prog.Run(engine.NewFactSet(), &counter)
		if err != nil {
			return nil, err
		}
		next.Counter = counter
		next.E = next.E.Minus(em)
	} else {
		// E1 = R_M applied to E0.
		prog, err := engine.Compile(s1, m.Rules, opts)
		if err != nil {
			return nil, err
		}
		counter := next.Counter
		e1, err := prog.Run(next.E, &counter)
		if err != nil {
			return nil, err
		}
		next.Counter = counter
		next.E = e1
	}
	next.S = s1

	if deferValidation {
		return &Result{State: next}, nil
	}
	_, in, err := next.Instance(opts)
	if err != nil {
		return nil, fmt.Errorf("module: rejected: %w", err)
	}
	return &Result{State: next, Instance: in}, nil
}

// shieldPanic converts an evaluation panic into a *guard.PanicError so a
// poisoned rule can never take down the process or leave a half-applied
// state; the clone discipline of Apply makes the abort side-effect-free.
func shieldPanic(err *error) {
	if rec := recover(); rec != nil {
		*err = &guard.PanicError{Value: rec, Stack: debug.Stack()}
	}
}

// subtractRules removes rules structurally equal to any of sub.
func subtractRules(rules, sub []*ast.Rule) []*ast.Rule {
	drop := map[string]bool{}
	for _, r := range sub {
		drop[r.String()] = true
	}
	var out []*ast.Rule
	for _, r := range rules {
		if !drop[r.String()] {
			out = append(out, r)
		}
	}
	return out
}

// Materialize implements the §4.2 idiom "materializing the instance": the
// persistent rules are applied once in RIDV fashion so that E coincides
// with I, and R is cleared.
func Materialize(st *State, opts engine.Options) (*State, error) {
	mod := &ast.Module{Schema: types.NewSchema(), Rules: st.R}
	res, err := Apply(st, mod, ast.RIDV, opts)
	if err != nil {
		return nil, err
	}
	res.State.R = nil
	return res.State, nil
}
