package module

import (
	"strings"
	"testing"

	"logres/internal/ast"
	"logres/internal/engine"
	"logres/internal/parser"
	"logres/internal/types"
	"logres/internal/value"
)

func opts() engine.Options { return engine.DefaultOptions() }

func parseModule(t *testing.T, src string) *ast.Module {
	t.Helper()
	m, err := parser.ParseModule(src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// newState builds a state with the given schema module source.
func newState(t *testing.T, schemaSrc string) *State {
	t.Helper()
	m := parseModule(t, schemaSrc)
	if err := m.Schema.Validate(); err != nil {
		t.Fatal(err)
	}
	return NewState(m.Schema)
}

// seed applies a RIDV module of facts.
func seed(t *testing.T, st *State, factsSrc string) *State {
	t.Helper()
	rules, err := parser.ParseProgram(factsSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Apply(st, &ast.Module{Schema: types.NewSchema(), Rules: rules}, ast.RIDV, opts())
	if err != nil {
		t.Fatal(err)
	}
	return res.State
}

const italianSchema = `
domains NAME = string;
associations
  ITALIAN = (name: NAME);
  ROMAN = (name: NAME);
`

// Example 4.1 of the paper: E0 = {italian(sara)}, R0 = ∅; applying a RIDV
// module with facts and a rule yields exactly the paper's E1.
func TestExample41RIDV(t *testing.T) {
	st := newState(t, italianSchema)
	st = seed(t, st, `italian(name: "sara").`)

	mod := parseModule(t, `
mode ridv.
rules
  italian(name: "luca").
  roman(name: "ugo").
  italian(name: X) <- roman(name: X).
end.
`)
	res, err := ApplyDeclared(st, mod, opts())
	if err != nil {
		t.Fatal(err)
	}
	e1 := res.State.E
	if e1.Size("italian") != 3 || e1.Size("roman") != 1 {
		t.Fatalf("italian=%d roman=%d", e1.Size("italian"), e1.Size("roman"))
	}
	for _, name := range []string{"sara", "luca", "ugo"} {
		f := engine.Fact{Pred: "italian", Tuple: value.NewTuple(value.Field{Label: "name", Value: value.Str(name)})}
		if !e1.Has(f) {
			t.Fatalf("italian(%s) missing", name)
		}
	}
	// RM is not added to the persistent rules under RIDV.
	if len(res.State.R) != 0 {
		t.Fatalf("RIDV must leave R unchanged, got %d rules", len(res.State.R))
	}
}

func TestRIDIQueryLeavesStateUnchanged(t *testing.T) {
	st := newState(t, italianSchema)
	st = seed(t, st, `italian(name: "sara"). roman(name: "ugo").`)
	before := st.E.TotalSize()

	mod := parseModule(t, `
rules
  italian(name: X) <- roman(name: X).
goal
  ?- italian(name: X).
end.
`)
	res, err := Apply(st, mod, ast.RIDI, opts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer == nil || len(res.Answer.Rows) != 2 {
		t.Fatalf("answer = %+v", res.Answer)
	}
	if st.E.TotalSize() != before {
		t.Fatal("RIDI changed the EDB")
	}
	if res.State != st {
		t.Fatal("RIDI must return the original state")
	}
}

func TestRADIAddsPersistentRules(t *testing.T) {
	st := newState(t, italianSchema)
	st = seed(t, st, `roman(name: "ugo").`)
	mod := parseModule(t, `
rules
  italian(name: X) <- roman(name: X).
end.
`)
	res, err := Apply(st, mod, ast.RADI, opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.State.R) != 1 {
		t.Fatalf("R = %d rules", len(res.State.R))
	}
	// EDB untouched; the instance includes the derived fact.
	if res.State.E.Size("italian") != 0 {
		t.Fatal("RADI changed the EDB")
	}
	f, _, err := res.State.Instance(opts())
	if err != nil {
		t.Fatal(err)
	}
	if f.Size("italian") != 1 {
		t.Fatalf("instance italian = %d", f.Size("italian"))
	}
}

func TestRDDIDeletesPersistentRules(t *testing.T) {
	st := newState(t, italianSchema)
	st = seed(t, st, `roman(name: "ugo").`)
	ruleSrc := `
rules
  italian(name: X) <- roman(name: X).
end.
`
	mod := parseModule(t, ruleSrc)
	res, err := Apply(st, mod, ast.RADI, opts())
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Apply(res.State, parseModule(t, ruleSrc), ast.RDDI, opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.State.R) != 0 {
		t.Fatalf("R = %d rules after RDDI", len(res2.State.R))
	}
	f, _, err := res2.State.Instance(opts())
	if err != nil {
		t.Fatal(err)
	}
	if f.Size("italian") != 0 {
		t.Fatal("derived facts survive rule deletion")
	}
}

func TestRADVAddsRulesAndUpdatesData(t *testing.T) {
	st := newState(t, italianSchema)
	st = seed(t, st, `roman(name: "ugo").`)
	mod := parseModule(t, `
rules
  italian(name: X) <- roman(name: X).
end.
`)
	res, err := Apply(st, mod, ast.RADV, opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.State.R) != 1 {
		t.Fatalf("R = %d", len(res.State.R))
	}
	if res.State.E.Size("italian") != 1 {
		t.Fatal("RADV did not update the EDB")
	}
}

func TestRDDVDeletesRulesAndFacts(t *testing.T) {
	st := newState(t, italianSchema)
	st = seed(t, st, `roman(name: "ugo"). italian(name: "luca").`)
	// The module's rules derive EM = {italian(luca)} from the empty set.
	mod := parseModule(t, `
rules
  italian(name: "luca").
end.
`)
	res, err := Apply(st, mod, ast.RDDV, opts())
	if err != nil {
		t.Fatal(err)
	}
	if res.State.E.Size("italian") != 0 {
		t.Fatalf("italian = %d after RDDV", res.State.E.Size("italian"))
	}
	if res.State.E.Size("roman") != 1 {
		t.Fatal("RDDV deleted too much")
	}
}

func TestGoalForbiddenInDataVariantModes(t *testing.T) {
	st := newState(t, italianSchema)
	mod := parseModule(t, `
rules
  italian(name: "x").
goal
  ?- italian(name: X).
end.
`)
	for _, mode := range []ast.Mode{ast.RIDV, ast.RADV, ast.RDDV} {
		if _, err := Apply(st, mod, mode, opts()); err == nil {
			t.Errorf("mode %s accepted a goal", mode)
		}
	}
}

func TestModuleAddsSchema(t *testing.T) {
	st := newState(t, italianSchema)
	mod := parseModule(t, `
mode radv.
associations
  TUSCAN = (name: NAME);
rules
  tuscan(name: "dante").
end.
`)
	res, err := ApplyDeclared(st, mod, opts())
	if err != nil {
		t.Fatal(err)
	}
	if !res.State.S.IsAssociation("tuscan") {
		t.Fatal("module schema not merged")
	}
	if res.State.E.Size("tuscan") != 1 {
		t.Fatal("facts for new association missing")
	}
}

func TestRejectionOnViolatedDenial(t *testing.T) {
	st := newState(t, italianSchema)
	st = seed(t, st, `italian(name: "sara"). roman(name: "sara").`)
	// Add a denial that the current data violates: RADI must reject and
	// leave the original state untouched.
	mod := parseModule(t, `
rules
  <- italian(name: X), roman(name: X).
end.
`)
	_, err := Apply(st, mod, ast.RADI, opts())
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("inconsistent module application accepted: %v", err)
	}
	// Original state still works.
	if _, _, err := st.Instance(opts()); err != nil {
		t.Fatal(err)
	}
}

func TestRejectionOnReferentialViolation(t *testing.T) {
	src := `
domains NAME = string;
classes
  SCHOOL = (sname: NAME);
associations
  ENROLL = (school: SCHOOL, who: NAME);
`
	st := newState(t, src)
	// Insert an association tuple referencing a non-existent school oid.
	st2 := st.Clone()
	st2.E.Add(engine.Fact{Pred: "enroll", Tuple: value.NewTuple(
		value.Field{Label: "school", Value: value.Ref(99)},
		value.Field{Label: "who", Value: value.Str("x")},
	)})
	if _, _, err := st2.Instance(opts()); err == nil || !strings.Contains(err.Error(), "dangling") {
		t.Fatalf("dangling reference accepted: %v", err)
	}
}

func TestMaterialize(t *testing.T) {
	st := newState(t, italianSchema)
	st = seed(t, st, `roman(name: "ugo").`)
	mod := parseModule(t, `
rules
  italian(name: X) <- roman(name: X).
end.
`)
	res, err := Apply(st, mod, ast.RADI, opts())
	if err != nil {
		t.Fatal(err)
	}
	mat, err := Materialize(res.State, opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(mat.R) != 0 {
		t.Fatal("Materialize kept rules")
	}
	if mat.E.Size("italian") != 1 {
		t.Fatal("Materialize lost derived facts (E must coincide with I)")
	}
}

func TestPartlyExtensionalPartlyIntensional(t *testing.T) {
	// A predicate defined partly in E and partly by rules in R (§4.2).
	st := newState(t, italianSchema)
	st = seed(t, st, `italian(name: "sara"). roman(name: "ugo").`)
	mod := parseModule(t, `
rules
  italian(name: X) <- roman(name: X).
end.
`)
	res, err := Apply(st, mod, ast.RADI, opts())
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := res.State.Instance(opts())
	if err != nil {
		t.Fatal(err)
	}
	if f.Size("italian") != 2 {
		t.Fatalf("italian instance = %d, want extensional+derived", f.Size("italian"))
	}
}

func TestObjectCreationThroughModules(t *testing.T) {
	src := `
domains NAME = string;
classes PERSON = (name: NAME);
associations ARRIVAL = (name: NAME);
`
	st := newState(t, src)
	st = seed(t, st, `arrival(name: "ann").`)
	mod := parseModule(t, `
mode ridv.
rules
  person(self: X, name: N) <- arrival(name: N).
end.
`)
	res, err := ApplyDeclared(st, mod, opts())
	if err != nil {
		t.Fatal(err)
	}
	if res.State.E.Size("person") != 1 {
		t.Fatalf("person = %d", res.State.E.Size("person"))
	}
	if res.State.Counter == 0 {
		t.Fatal("oid counter not advanced")
	}
	// Re-applying the same module must not create a second object (VD
	// dedup against the new E).
	res2, err := ApplyDeclared(res.State, mod, opts())
	if err != nil {
		t.Fatal(err)
	}
	if res2.State.E.Size("person") != 1 {
		t.Fatalf("re-application duplicated objects: %d", res2.State.E.Size("person"))
	}
}

func TestUpdateDerivedRelationIdiom(t *testing.T) {
	// §4.2 "updating derived relations", third strategy: materialize the
	// derived relation (RIDV), delete the old rule (RDDV has rule effect;
	// here RDDI suffices as data was materialized), then add new rules.
	st := newState(t, italianSchema)
	st = seed(t, st, `roman(name: "ugo").`)
	oldRule := `
rules
  italian(name: X) <- roman(name: X).
end.
`
	res, err := Apply(st, parseModule(t, oldRule), ast.RADI, opts())
	if err != nil {
		t.Fatal(err)
	}
	// Materialize italian into E.
	mat, err := Materialize(res.State, opts())
	if err != nil {
		t.Fatal(err)
	}
	// New definition overrides: delete the materialized tuple, add another.
	upd := parseModule(t, `
mode ridv.
rules
  not italian(name: "ugo") <- roman(name: "ugo").
  italian(name: "ugo2") <- roman(name: "ugo").
end.
`)
	res2, err := ApplyDeclared(mat, upd, opts())
	if err != nil {
		t.Fatal(err)
	}
	got := res2.State.E
	hasOld := got.Has(engine.Fact{Pred: "italian", Tuple: value.NewTuple(value.Field{Label: "name", Value: value.Str("ugo")})})
	hasNew := got.Has(engine.Fact{Pred: "italian", Tuple: value.NewTuple(value.Field{Label: "name", Value: value.Str("ugo2")})})
	if hasOld || !hasNew {
		t.Fatalf("update idiom failed: old=%v new=%v", hasOld, hasNew)
	}
}

func TestStateCloneIndependence(t *testing.T) {
	st := newState(t, italianSchema)
	st = seed(t, st, `italian(name: "sara").`)
	cp := st.Clone()
	cp.E.Add(engine.Fact{Pred: "roman", Tuple: value.NewTuple(value.Field{Label: "name", Value: value.Str("x")})})
	if st.E.Size("roman") != 0 {
		t.Fatal("clone shares the EDB")
	}
}

func TestSuperclassDeletionRejected(t *testing.T) {
	// Deleting an object's membership from the superclass while a
	// subclass still holds it can never produce a legal state: the
	// generated isa-propagation constraint re-derives the membership the
	// deletion removes, so the one-step operator oscillates and no
	// fixpoint exists — the application fails (with a bounded-steps
	// error) and the original state survives.
	src := `
classes
  PERSON = (name: string);
  STUDENT = (PERSON, school: string);
  STUDENT isa PERSON;
associations
  INTAKE = (name: string);
  PURGE = (name: string);
`
	st := newState(t, src)
	st = seed(t, st, `
intake(name: "ann").
student(self: S, name: N, school: "polimi") <- intake(name: N).
`)
	if st.E.Size("student") != 1 || st.E.Size("person") != 1 {
		t.Fatalf("setup: student=%d person=%d", st.E.Size("student"), st.E.Size("person"))
	}
	mod := parseModule(t, `
mode ridv.
rules
  purge(name: "ann").
  not person(name: N) <- purge(name: N).
end.
`)
	boundedOpts := opts()
	boundedOpts.MaxSteps = 200
	_, err := Apply(st, mod, ast.RIDV, boundedOpts)
	if err == nil || !strings.Contains(err.Error(), "fixpoint") {
		t.Fatalf("superclass-only deletion accepted: %v", err)
	}
	// The original state is untouched and still consistent.
	if _, _, err := st.Instance(opts()); err != nil {
		t.Fatal(err)
	}
	// Deleting from BOTH classes is consistent.
	mod2 := parseModule(t, `
mode ridv.
rules
  purge(name: "ann").
  not person(name: N) <- purge(name: N).
  not student(name: N) <- purge(name: N).
end.
`)
	res, err := Apply(st, mod2, ast.RIDV, opts())
	if err != nil {
		t.Fatal(err)
	}
	if res.State.E.Size("person") != 0 || res.State.E.Size("student") != 0 {
		t.Fatalf("deletion incomplete: person=%d student=%d",
			res.State.E.Size("person"), res.State.E.Size("student"))
	}
}

func TestDanglingReferenceAfterDeletionRejected(t *testing.T) {
	// Deleting an object still referenced by an association violates the
	// generated referential constraint; the application is rejected.
	src := `
classes SCHOOL = (sname: string);
associations
  ATTEND = (school: SCHOOL, who: string);
  SEEDS = (sname: string);
  KILL = (sname: string);
`
	st := newState(t, src)
	st = seed(t, st, `
seeds(sname: "polimi").
school(self: S, sname: N) <- seeds(sname: N).
attend(school: S, who: "ann") <- school(self: S).
`)
	mod := parseModule(t, `
mode ridv.
rules
  kill(sname: "polimi").
  not school(sname: N) <- kill(sname: N).
end.
`)
	if _, err := Apply(st, mod, ast.RIDV, opts()); err == nil ||
		!strings.Contains(err.Error(), "rejected") {
		t.Fatalf("dangling-reference deletion accepted: %v", err)
	}
	// Cascading the deletion makes it legal. Note the attend deletion must
	// not re-read the school class: stratification orders deletions by
	// their dependencies, so a rule whose body joins through the deleted
	// class would run in a later stratum and find it already gone — the
	// cascade below binds the doomed tuples through attend itself.
	mod2 := parseModule(t, `
mode ridv.
rules
  kill(sname: "polimi").
  not attend(T) <- kill(sname: N), attend(T).
  not school(sname: N) <- kill(sname: N).
end.
`)
	res, err := Apply(st, mod2, ast.RIDV, opts())
	if err != nil {
		t.Fatal(err)
	}
	if res.State.E.Size("school") != 0 || res.State.E.Size("attend") != 0 {
		t.Fatal("cascaded deletion incomplete")
	}
}
