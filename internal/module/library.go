package module

import (
	"fmt"
	"strings"

	"logres/internal/ast"
	"logres/internal/engine"
	"logres/internal/parser"
)

// Library is a registry of named modules — the paper's §5 direction of
// supporting "the notions of methods and of encapsulation … within
// LOGRES": a module stored under its name is an encapsulated query or
// update procedure, invoked against a state without the caller seeing its
// rules.
type Library struct {
	mods  map[string]*ast.Module
	order []string
}

// NewLibrary returns an empty library.
func NewLibrary() *Library {
	return &Library{mods: map[string]*ast.Module{}}
}

// Register stores a module under its declared name. Re-registering a name
// replaces the previous module (method redefinition).
func (l *Library) Register(m *ast.Module) error {
	if m.Name == "" {
		return fmt.Errorf("module: cannot register an anonymous module; declare `module NAME.`")
	}
	if _, exists := l.mods[m.Name]; !exists {
		l.order = append(l.order, m.Name)
	}
	l.mods[m.Name] = m
	return nil
}

// Get returns a registered module.
func (l *Library) Get(name string) (*ast.Module, bool) {
	m, ok := l.mods[strings.ToLower(name)]
	return m, ok
}

// Remove deletes a registered module; it reports whether it existed.
func (l *Library) Remove(name string) bool {
	name = strings.ToLower(name)
	if _, ok := l.mods[name]; !ok {
		return false
	}
	delete(l.mods, name)
	for i, n := range l.order {
		if n == name {
			l.order = append(l.order[:i], l.order[i+1:]...)
			break
		}
	}
	return true
}

// Names returns the registered module names in registration order.
func (l *Library) Names() []string {
	out := make([]string, len(l.order))
	copy(out, l.order)
	return out
}

// Call applies the named module to a state with its declared mode.
func (l *Library) Call(st *State, name string, opts engine.Options) (*Result, error) {
	m, ok := l.Get(name)
	if !ok {
		return nil, fmt.Errorf("module: no module named %q; registered: %s",
			name, strings.Join(l.Names(), ", "))
	}
	return ApplyDeclared(st, m, opts)
}

// Clone returns a copy of the library (modules are immutable once
// parsed and shared).
func (l *Library) Clone() *Library {
	n := NewLibrary()
	for _, name := range l.order {
		n.order = append(n.order, name)
		n.mods[name] = l.mods[name]
	}
	return n
}

// Sources renders every registered module back to concrete syntax, for
// persistence. The rendering re-parses to the same module.
func (l *Library) Sources() []string {
	out := make([]string, 0, len(l.order))
	for _, name := range l.order {
		out = append(out, RenderModule(l.mods[name]))
	}
	return out
}

// LoadSources re-registers modules from rendered sources.
func (l *Library) LoadSources(sources []string) error {
	for _, src := range sources {
		m, err := parser.ParseModule(src)
		if err != nil {
			return fmt.Errorf("module: reparsing library module: %w", err)
		}
		if err := l.Register(m); err != nil {
			return err
		}
	}
	return nil
}

// RenderModule prints a module in concrete syntax such that re-parsing
// yields an equivalent module.
func RenderModule(m *ast.Module) string {
	var b strings.Builder
	if m.Name != "" {
		fmt.Fprintf(&b, "module %s.\n", m.Name)
	}
	if m.HasMod {
		fmt.Fprintf(&b, "mode %s.\n", strings.ToLower(m.Mode.String()))
	}
	if m.NonInflationary {
		b.WriteString("semantics noninflationary.\n")
	}
	if m.Schema != nil && len(m.Schema.Names()) > 0 {
		b.WriteString(m.Schema.String())
	}
	if len(m.Rules) > 0 {
		b.WriteString("rules\n")
		for _, r := range m.Rules {
			b.WriteString("  " + r.String() + "\n")
		}
	}
	if len(m.Goal) > 0 {
		b.WriteString("goal\n  ?- ")
		parts := make([]string, len(m.Goal))
		for i, g := range m.Goal {
			parts[i] = g.String()
		}
		b.WriteString(strings.Join(parts, ", ") + ".\n")
	}
	b.WriteString("end.\n")
	return b.String()
}
