// Package server implements the logres-server HTTP/JSON data plane: a
// registry of named databases, module application over the optimistic
// concurrent path, streamed query answers, and the typed error mapping
// that puts every engine failure mode on the wire (see errors.go). The
// observability mux (/metrics, /debug/vars, /debug/pprof) is mounted
// beside the data plane so one listener serves both.
//
// Concurrency model: requests are handled on the standard library's
// per-connection goroutines; module applications go through
// ExecConcurrentContext, so requests touching disjoint predicates
// evaluate in parallel and only serialize for the commit critical
// section. Graceful shutdown drains in-flight applications (Shutdown),
// falling back to context cancellation when the grace period expires —
// the engine's all-or-nothing abort guarantees a canceled application
// leaves no partial state.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"logres"
	"logres/client"
	"logres/internal/obs"
)

// DefaultQueryChunkSize bounds the rows per streamed query chunk when
// the request does not choose one.
const DefaultQueryChunkSize = 256

// Options configures a Server.
type Options struct {
	// Metrics is the shared registry every database and the HTTP layer
	// record into, served on /metrics; nil creates a fresh one.
	Metrics *logres.Metrics
	// QueryChunkSize overrides DefaultQueryChunkSize (<= 0 keeps it).
	QueryChunkSize int
	// DataDir, when set, makes every database durable: each lives in
	// its own subdirectory (snapshot + write-ahead log), creates persist
	// across restarts, and OpenDataDir recovers the whole registry at
	// startup. Empty keeps databases in memory.
	DataDir string
	// Fsync, FsyncInterval, and CompactEvery configure the WAL of every
	// durable database (logres.Durability); zero values keep the
	// defaults (fsync on every append, compact every 4096 records).
	Fsync         logres.FsyncPolicy
	FsyncInterval time.Duration
	CompactEvery  int
	// SlowQueryThreshold arms the slow-query log: any data-plane request
	// whose handler runs at least this long is recorded as one JSONL line
	// (request id, route, database, status, elapsed, full profile) on
	// SlowQueryLog. Zero disables; arming forces profile collection on
	// every data-plane request so the offender's record describes the
	// actual slow execution.
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives the slow-query JSONL records (required for
	// SlowQueryThreshold to take effect); writes are serialized.
	SlowQueryLog io.Writer
}

// ErrExists reports a create against a name that is already
// registered; errors.Is identifies it through the wrapped form.
var ErrExists = errors.New("database already exists")

// Server is the data-plane handler plus the database registry.
type Server struct {
	metrics   *logres.Metrics
	chunkSize int
	mux       *http.ServeMux

	dataDir       string
	fsync         logres.FsyncPolicy
	fsyncInterval time.Duration
	compactEvery  int

	mu  sync.RWMutex
	dbs map[string]*logres.Database

	// draining rejects new data-plane requests with 503 once shutdown
	// starts; inflight tracks the requests already past that gate.
	draining atomic.Bool
	inflight sync.WaitGroup
	// ready gates /readyz: false until the data directory (when the
	// server has one) finished startup recovery via OpenDataDir.
	ready atomic.Bool
	// forceCtx is canceled when the shutdown grace period expires,
	// aborting in-flight evaluations through their contexts.
	forceCtx    context.Context
	forceCancel context.CancelFunc
	// subsCtx is canceled the moment shutdown starts: live subscription
	// streams are open-ended, so they end at drain entry (not at grace
	// expiry) or Shutdown's inflight wait could never finish.
	subsCtx    context.Context
	subsCancel context.CancelFunc

	// requests is the in-flight request registry behind /debug/requests
	// and Shutdown's drain report; slow is the slow-query JSONL log.
	requests *requestRegistry
	slow     *slowLog
}

// New builds a server with an empty registry.
func New(opts Options) *Server {
	m := opts.Metrics
	if m == nil {
		m = logres.NewMetrics()
	}
	chunk := opts.QueryChunkSize
	if chunk <= 0 {
		chunk = DefaultQueryChunkSize
	}
	ctx, cancel := context.WithCancel(context.Background())
	subsCtx, subsCancel := context.WithCancel(context.Background())
	s := &Server{
		metrics:       m,
		chunkSize:     chunk,
		dataDir:       opts.DataDir,
		fsync:         opts.Fsync,
		fsyncInterval: opts.FsyncInterval,
		compactEvery:  opts.CompactEvery,
		dbs:           map[string]*logres.Database{},
		forceCtx:      ctx,
		forceCancel:   cancel,
		subsCtx:       subsCtx,
		subsCancel:    subsCancel,
		requests:      newRequestRegistry(),
		slow:          &slowLog{threshold: opts.SlowQueryThreshold, w: opts.SlowQueryLog},
	}
	// An in-memory server is ready immediately; a durable one becomes
	// ready when OpenDataDir finishes replaying its databases.
	s.ready.Store(opts.DataDir == "")
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// Handler returns the combined data-plane + observability handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the shared registry (databases created through the
// API record into it; preloaded databases should be opened with
// logres.WithMetrics(s.Metrics()) to share it).
func (s *Server) Metrics() *logres.Metrics { return s.metrics }

// Add registers a preloaded database (a snapshot or schema the daemon
// opened before serving) under name.
func (s *Server) Add(name string, db *logres.Database) error {
	if err := validateDBName(name); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.dbs[name]; ok {
		return fmt.Errorf("server: database %q already exists", name)
	}
	s.dbs[name] = db
	return nil
}

// Create opens a database over schema and registers it under name —
// durably, into its own subdirectory of the data directory, when the
// server has one. It is the programmatic form of PUT /v1/db/{name};
// the daemon's preload path shares it so a preloaded database gets the
// same durability as API-created ones. A taken name fails with a
// wrapped ErrExists. The registry lock is held across the store
// creation so two racing creates of one name cannot both claim its
// directory.
func (s *Server) Create(name, schema string, opts ...logres.Option) (*logres.Database, error) {
	if err := validateDBName(name); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.dbs[name]; ok {
		return nil, fmt.Errorf("server: database %q: %w", name, ErrExists)
	}
	var (
		db  *logres.Database
		err error
	)
	if s.dataDir != "" {
		db, _, err = logres.OpenDurable(schema, s.durability(name), opts...)
	} else {
		db, err = logres.Open(schema, opts...)
	}
	if err != nil {
		return nil, err
	}
	s.dbs[name] = db
	return db, nil
}

// durability is the per-database durable configuration: one
// subdirectory of the data dir, the server-wide WAL knobs.
func (s *Server) durability(name string) logres.Durability {
	return logres.Durability{
		Dir:           filepath.Join(s.dataDir, name),
		Fsync:         s.fsync,
		FsyncInterval: s.fsyncInterval,
		CompactEvery:  s.compactEvery,
	}
}

// OpenDataDir opens or recovers every database persisted under the
// server's data directory, registering each subdirectory under its
// name, and returns the recovered names sorted. Directories parked by
// a drop (name.dropped.<nanos>) and entries that are not valid
// database names are skipped. Per-database recovery detail — replayed
// records, a quarantined torn tail — is exposed on GET /v1/db/{name}.
// A no-op without a data directory.
func (s *Server) OpenDataDir(opts ...logres.Option) ([]string, error) {
	if s.dataDir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(s.dataDir, 0o755); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(s.dataDir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() || strings.Contains(name, ".dropped.") || validateDBName(name) != nil {
			continue
		}
		all := append([]logres.Option{logres.WithMetrics(s.metrics)}, opts...)
		db, _, err := logres.OpenDurable("", s.durability(name), all...)
		if err != nil {
			return names, fmt.Errorf("server: recovering database %q: %w", name, err)
		}
		s.mu.Lock()
		s.dbs[name] = db
		s.mu.Unlock()
		names = append(names, name)
	}
	sort.Strings(names)
	// Recovery is complete: the server may now pass readiness probes.
	// On the error return above the flag stays false — /readyz keeps
	// reporting the instance as recovering.
	s.ready.Store(true)
	return names, nil
}

// Shutdown drains the server: new data-plane requests get 503, and the
// call blocks until every in-flight request finished. When ctx expires
// first, in-flight evaluations are canceled through their contexts (the
// engine aborts between rounds with a *CanceledError and state
// untouched) and Shutdown still waits for the handlers to unwind.
// Once drained, every durable database's WAL is flushed to stable
// storage, so interval- and off-policy databases lose nothing on a
// clean shutdown.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	// Subscriptions end now, not at grace expiry: their handlers count
	// toward the in-flight drain but would otherwise stream forever.
	s.subsCancel()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		// Name what the drain is stuck on before force-canceling: the
		// registry still holds the in-flight requests at this instant,
		// with their live phase and elapsed time.
		waiting := s.requests.describe(time.Now())
		s.forceCancel()
		<-done
		err = ctx.Err()
		if waiting != "" {
			err = fmt.Errorf("server: shutdown grace expired waiting on %s: %w", waiting, ctx.Err())
		}
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for name, db := range s.dbs {
		if serr := db.Sync(); serr != nil && err == nil {
			err = fmt.Errorf("server: syncing database %q: %w", name, serr)
		}
	}
	return err
}

// routes wires the data plane and mounts the observability mux beside
// it. Observability routes are GET/HEAD-only (obs.NewServeMux guards
// them), so the combined mux has no method ambiguity.
func (s *Server) routes() {
	s.mux.Handle("GET /v1/db", s.dataPlane("list", s.handleList))
	s.mux.Handle("PUT /v1/db/{name}", s.dataPlane("create", s.handleCreate))
	s.mux.Handle("GET /v1/db/{name}", s.dataPlane("info", s.handleInfo))
	s.mux.Handle("DELETE /v1/db/{name}", s.dataPlane("drop", s.handleDrop))
	s.mux.Handle("POST /v1/db/{name}/exec", s.dataPlane("exec", s.handleExec))
	s.mux.Handle("POST /v1/db/{name}/query", s.dataPlane("query", s.handleQuery))
	s.mux.Handle("GET /v1/db/{name}/instance", s.dataPlane("instance", s.handleInstance))
	s.mux.Handle("POST /v1/db/{name}/register", s.dataPlane("register", s.handleRegister))
	s.mux.Handle("POST /v1/db/{name}/subscribe", s.dataPlane("subscribe", s.handleSubscribe))

	obsMux := obs.NewServeMux(s.metrics)
	s.mux.Handle("/metrics", obsMux)
	s.mux.Handle("/debug/", obsMux)
	// More specific than the obs mux's /debug/ subtree, so the standard
	// mux routes it here.
	s.mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)

	// Probes bypass the data-plane middleware: liveness must answer
	// while draining, and neither should mint spans or count toward the
	// drain.
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
}

// dataPlane wraps one route handler with the shared request plumbing:
// the draining gate, in-flight tracking for Shutdown, the force-cancel
// context merge, request identity (traceparent / X-Request-ID → span →
// context), the in-flight registry, the slow-query log, and per-route
// request/latency/status metrics.
func (s *Server) dataPlane(route string, h func(http.ResponseWriter, *http.Request)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			// The hint tells retrying clients (client.WithDrainingRetries)
			// how long to back off before trying a peer or the restarted
			// instance.
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable,
				client.ErrorResponse{Error: "server is shutting down", Kind: client.KindDraining})
			return
		}
		s.inflight.Add(1)
		defer s.inflight.Done()

		// The evaluation context is the request's, additionally canceled
		// when the shutdown grace period expires.
		ctx, cancel := context.WithCancel(r.Context())
		defer cancel()
		stop := context.AfterFunc(s.forceCtx, cancel)
		defer stop()

		// Request identity: adopt the client's trace context or mint one,
		// and carry it as a span so every engine event this request causes
		// (rounds, kernels, retries, WAL waits) is attributable to it. The
		// id is echoed back so a client that did not send one can still
		// correlate with server logs. An armed slow-query log needs the
		// profile of every request up front — a slow one cannot be
		// re-profiled after the fact.
		span := newRequestSpan(r)
		if s.slow.armed() || r.URL.Query().Get("profile") == "1" {
			span.EnableProfile()
		}
		ctx = obs.ContextWithSpan(ctx, span)
		r = r.WithContext(ctx)
		w.Header().Set("X-Request-ID", span.RequestID)

		entry := s.requests.add(span, route, r.PathValue("name"))
		defer s.requests.remove(entry)

		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(rec, r)
		elapsed := time.Since(start)
		s.metrics.Counter(fmt.Sprintf("logres_http_requests_total{route=%q}", route)).Add(1)
		s.metrics.Counter(fmt.Sprintf("logres_http_responses_total{route=%q,code=\"%d\"}", route, rec.status)).Add(1)
		s.metrics.Histogram(fmt.Sprintf("logres_http_request_duration_ns{route=%q}", route)).
			Observe(elapsed.Nanoseconds())
		s.slow.maybeLog(span, route, r.PathValue("name"), rec.status, elapsed)
	})
}

// statusRecorder captures the response status for metrics while
// preserving the Flusher the streaming handlers need.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// ---------------------------------------------------------------------------
// Registry handlers.
// ---------------------------------------------------------------------------

func validateDBName(name string) error {
	if name == "" || len(name) > 128 {
		return fmt.Errorf("server: database name must be 1-128 characters")
	}
	// Names become data-directory components for durable servers, so
	// the path-traversal names are rejected even though '/' already is.
	if name == "." || name == ".." {
		return fmt.Errorf("server: database name %q is reserved", name)
	}
	for _, r := range name {
		if !(r == '-' || r == '_' || r == '.' ||
			('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z') || ('0' <= r && r <= '9')) {
			return fmt.Errorf("server: database name %q contains %q; allowed: letters, digits, '-', '_', '.'", name, r)
		}
	}
	return nil
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*logres.Database, bool) {
	name := r.PathValue("name")
	s.mu.RLock()
	db, ok := s.dbs[name]
	s.mu.RUnlock()
	if !ok {
		writeError(w, http.StatusNotFound,
			client.ErrorResponse{Error: fmt.Sprintf("no database %q", name), Kind: client.KindNotFound})
		return nil, false
	}
	return db, true
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	names := make([]string, 0, len(s.dbs))
	for name := range s.dbs {
		names = append(names, name)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	writeJSON(w, http.StatusOK, client.ListResponse{Databases: names})
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := validateDBName(name); err != nil {
		writeError(w, http.StatusBadRequest, client.ErrorResponse{Error: err.Error(), Kind: client.KindInvalid})
		return
	}
	var req client.CreateRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	opts := []logres.Option{logres.WithMetrics(s.metrics)}
	if o := req.Options; o != nil {
		if o.Workers != 0 {
			opts = append(opts, logres.WithWorkers(o.Workers))
		}
		if o.Shards != 0 {
			opts = append(opts, logres.WithShards(o.Shards))
		}
		if o.MaxRetries != 0 {
			opts = append(opts, logres.WithMaxRetries(o.MaxRetries))
		}
		if b := o.Budget; b != nil {
			opts = append(opts, logres.WithBudget(logres.Budget{
				MaxRounds: b.MaxRounds,
				MaxFacts:  b.MaxFacts,
				MaxOIDs:   b.MaxOIDs,
				Timeout:   b.Timeout(),
			}))
		}
		if o.Incremental {
			opts = append(opts, logres.WithIncremental(true))
		}
	}
	db, err := s.Create(name, req.Schema, opts...)
	if err != nil {
		if errors.Is(err, ErrExists) {
			writeError(w, http.StatusConflict,
				client.ErrorResponse{Error: fmt.Sprintf("database %q already exists", name), Kind: client.KindExists})
			return
		}
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, s.info(name, db))
}

func (s *Server) handleInfo(w http.ResponseWriter, r *http.Request) {
	db, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, s.info(r.PathValue("name"), db))
}

func (s *Server) info(name string, db *logres.Database) client.DBInfo {
	info := client.DBInfo{
		Name:        name,
		Epoch:       db.CommitEpoch(),
		Rules:       db.RuleCount(),
		Modules:     db.Modules(),
		Schema:      db.Schema(),
		Incremental: db.Incremental(),
	}
	if st, ok := db.Durability(); ok {
		info.Durability = &client.DurabilityInfo{
			Fsync:           st.Fsync.String(),
			Epoch:           st.Epoch,
			CheckpointEpoch: st.CheckpointEpoch,
			WALRecords:      st.WALRecords,
			WALBytes:        st.WALBytes,
		}
	}
	if rec := db.Recovery(); rec != nil {
		ri := &client.RecoveryInfo{
			SnapshotEpoch: rec.SnapshotEpoch,
			Epoch:         rec.Epoch,
			Replayed:      rec.Replayed,
			BadSnapshots:  rec.BadSnapshots,
		}
		if rec.Tail != nil {
			ri.TornTail = rec.Tail.Error()
		}
		info.Recovery = ri
	}
	return info
}

func (s *Server) handleDrop(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	s.mu.Lock()
	db, ok := s.dbs[name]
	delete(s.dbs, name)
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound,
			client.ErrorResponse{Error: fmt.Sprintf("no database %q", name), Kind: client.KindNotFound})
		return
	}
	// A durable database's directory is parked, not deleted: the WAL is
	// closed and the directory renamed aside under a timestamped name,
	// so the drop frees the name immediately while an operator can
	// still salvage the data.
	if st, durable := db.Durability(); durable {
		_ = db.Close()
		parked := fmt.Sprintf("%s.dropped.%d", st.Dir, time.Now().UnixNano())
		if err := os.Rename(st.Dir, parked); err != nil {
			writeError(w, http.StatusInternalServerError,
				client.ErrorResponse{Error: fmt.Sprintf("parking data directory: %v", err), Kind: client.KindInternal})
			return
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// ---------------------------------------------------------------------------
// Data-plane handlers.
// ---------------------------------------------------------------------------

// modeNames maps wire mode names onto the engine's application modes.
var modeNames = map[string]logres.Mode{
	"RIDI": logres.RIDI, "RADI": logres.RADI, "RDDI": logres.RDDI,
	"RIDV": logres.RIDV, "RADV": logres.RADV, "RDDV": logres.RDDV,
}

func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	db, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req client.ExecRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	m, err := logres.ParseModule(req.Module)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	mode := m.Mode
	if req.Mode != "" {
		parsed, ok := modeNames[strings.ToUpper(req.Mode)]
		if !ok {
			writeError(w, http.StatusBadRequest,
				client.ErrorResponse{Error: fmt.Sprintf("unknown mode %q", req.Mode), Kind: client.KindInvalid})
			return
		}
		mode = parsed
	}
	var callOpts []logres.CallOption
	if req.MaxRetries != 0 {
		callOpts = append(callOpts, logres.WithCallMaxRetries(req.MaxRetries))
	}
	// Profiling must be armed before evaluation starts; the middleware
	// already armed it for ?profile=1 and an armed slow-query log, this
	// covers the request-body flag.
	span := obs.SpanFromContext(r.Context())
	if req.Profile && span != nil {
		span.EnableProfile()
	}
	var res *logres.Result
	if req.Serial {
		res, err = db.ApplyContext(r.Context(), m, mode, callOpts...)
	} else {
		res, err = db.ApplyConcurrentContext(r.Context(), m, mode, callOpts...)
	}
	if err != nil {
		writeEngineError(w, err)
		return
	}
	resp := client.ExecResponse{
		Mode:   res.Mode.String(),
		Answer: answerJSON(res.Answer),
		Epoch:  db.CommitEpoch(),
	}
	if wantProfile(req.Profile, r) && span != nil {
		if col := span.Collector(); col != nil {
			p := col.Profile(time.Since(span.Start))
			p.RequestID, p.TraceID = span.RequestID, span.TraceID
			resp.Profile = profileJSON(p)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// wantProfile reports whether the response should carry the profile:
// the request asked in its body or via ?profile=1. (An armed slow-query
// log collects for every request but does not put profiles on the wire
// unasked.)
func wantProfile(bodyFlag bool, r *http.Request) bool {
	return bodyFlag || r.URL.Query().Get("profile") == "1"
}

// handleQuery streams the goal's answer as NDJSON: one QueryHeader
// line, QueryChunk lines of at most chunk_size rows each (flushed as
// they are written, so a client can consume early rows while later
// chunks are still in flight), and a QueryTrailer.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	db, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req client.QueryRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.AsOf != 0 {
		// Point-in-time read: reconstruct the committed state at the
		// requested epoch (checkpoint snapshot + WAL prefix) and query
		// that. Epochs behind the compaction horizon or ahead of the
		// present are client errors.
		past, err := db.AsOf(req.AsOf)
		if err != nil {
			writeError(w, http.StatusBadRequest,
				client.ErrorResponse{Error: err.Error(), Kind: client.KindInvalid})
			return
		}
		db = past
	}
	span := obs.SpanFromContext(r.Context())
	if req.Profile && span != nil {
		span.EnableProfile()
	}
	ans, err := db.QueryContext(r.Context(), req.Goal)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	if span != nil {
		span.SetPhase("stream")
	}
	chunk := req.ChunkSize
	if chunk <= 0 {
		chunk = s.chunkSize
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	if err := enc.Encode(client.QueryHeader{Vars: ans.Vars}); err != nil {
		return
	}
	flush()
	rows := renderRows(ans.Rows)
	for start := 0; start < len(rows); start += chunk {
		end := start + chunk
		if end > len(rows) {
			end = len(rows)
		}
		if err := enc.Encode(client.QueryChunk{Rows: rows[start:end]}); err != nil {
			return
		}
		flush()
	}
	trailer := client.QueryTrailer{Done: true, Total: len(rows)}
	if wantProfile(req.Profile, r) && span != nil {
		if col := span.Collector(); col != nil {
			p := col.Profile(time.Since(span.Start))
			p.RequestID, p.TraceID = span.RequestID, span.TraceID
			trailer.Profile = profileJSON(p)
		}
	}
	_ = enc.Encode(trailer)
	flush()
}

// handleInstance streams the derived instance as NDJSON InstanceFact
// lines followed by a QueryTrailer carrying the fact count.
func (s *Server) handleInstance(w http.ResponseWriter, r *http.Request) {
	db, ok := s.lookup(w, r)
	if !ok {
		return
	}
	facts, err := db.Instance()
	if err != nil {
		writeEngineError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	for i, f := range facts {
		if err := enc.Encode(client.InstanceFact{Pred: f.Pred, Fact: f.String()}); err != nil {
			return
		}
		// Flush periodically, not per fact: instances can be large.
		if flusher != nil && (i+1)%1024 == 0 {
			flusher.Flush()
		}
	}
	_ = enc.Encode(client.QueryTrailer{Done: true, Total: len(facts)})
	if flusher != nil {
		flusher.Flush()
	}
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	db, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req client.RegisterRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if err := db.Register(req.Module); err != nil {
		writeEngineError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleSubscribe serves a live view subscription as a long-lived
// NDJSON stream: a SubscribeHeader line pinning the start epoch, then
// one DiffEvent line per state-changing commit, flushed as it lands.
// The stream ends with an {"error": …} line when the server tears the
// subscription down — backpressure disconnect ("slow_consumer"),
// maintenance failure ("internal"), or shutdown ("draining") — and
// silently when the client hangs up.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	db, ok := s.lookup(w, r)
	if !ok {
		return
	}
	var req client.SubscribeRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	sub, err := db.SubscribeView(logres.SubscribeOptions{Preds: req.Preds, Buffer: req.Buffer})
	if err != nil {
		if errors.Is(err, logres.ErrNotIncremental) {
			writeError(w, http.StatusBadRequest,
				client.ErrorResponse{Error: err.Error(), Kind: client.KindInvalid})
			return
		}
		writeEngineError(w, err)
		return
	}
	defer sub.Close()

	if span := obs.SpanFromContext(r.Context()); span != nil {
		span.SetPhase("stream")
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	writeErrLine := func(resp client.ErrorResponse) {
		_ = enc.Encode(struct {
			Error client.ErrorResponse `json:"error"`
		}{resp})
		flush()
	}
	if err := enc.Encode(client.SubscribeHeader{Epoch: sub.Epoch, Preds: req.Preds}); err != nil {
		return
	}
	flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.subsCtx.Done():
			writeErrLine(client.ErrorResponse{Error: "server is shutting down", Kind: client.KindDraining})
			return
		case d, open := <-sub.C:
			if !open {
				switch err := sub.Err(); {
				case err == nil:
				default:
					kind := client.KindInternal
					var slow *logres.SlowConsumerError
					if errors.As(err, &slow) {
						kind = client.KindSlowConsumer
					}
					writeErrLine(client.ErrorResponse{Error: err.Error(), Kind: kind})
				}
				return
			}
			ev := client.DiffEvent{Epoch: d.Epoch, Adds: diffFacts(d.Adds), Removes: diffFacts(d.Removes)}
			if err := enc.Encode(ev); err != nil {
				return
			}
			flush()
		}
	}
}

// diffFacts renders one side of a ViewDiff for the wire.
func diffFacts(fs []logres.Fact) []client.DiffFact {
	out := make([]client.DiffFact, len(fs))
	for i, f := range fs {
		out[i] = client.DiffFact{Pred: f.Pred, Fact: f.String()}
	}
	return out
}

// ---------------------------------------------------------------------------
// Wire helpers.
// ---------------------------------------------------------------------------

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest,
			client.ErrorResponse{Error: "malformed request body: " + err.Error(), Kind: client.KindInvalid})
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// answerJSON renders an engine answer for the wire: values in LOGRES
// syntax, deterministic row order preserved.
func answerJSON(ans *logres.Answer) *client.Answer {
	if ans == nil {
		return nil
	}
	return &client.Answer{Vars: ans.Vars, Rows: renderRows(ans.Rows)}
}

func renderRows(rows [][]logres.Value) [][]string {
	out := make([][]string, len(rows))
	for i, row := range rows {
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = v.String()
		}
		out[i] = cells
	}
	return out
}
