package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"logres/client"
	"logres/internal/hooks"
)

func TestParseTraceparent(t *testing.T) {
	cases := []struct {
		in            string
		trace, parent string
	}{
		{"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
			"0af7651916cd43dd8448eb211c80319c", "b7ad6b7169203331"},
		{"", "", ""},
		{"garbage", "", ""},
		{"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331", "", ""},    // 3 fields
		{"00-0af7651916cd43dd8448eb211c80319-b7ad6b7169203331-01", "", ""},  // short trace id
		{"00-0af7651916cd43dd8448eb211c80319c-b7ad6b716920333x-01", "", ""}, // non-hex
		{"00-00000000000000000000000000000000-b7ad6b7169203331-01", "", ""}, // zero trace id
		{"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01", "", ""}, // zero parent id
		{"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra", "", ""},
	}
	for _, c := range cases {
		trace, parent := parseTraceparent(c.in)
		if trace != c.trace || parent != c.parent {
			t.Errorf("parseTraceparent(%q) = %q, %q; want %q, %q", c.in, trace, parent, c.trace, c.parent)
		}
	}
}

// TestRequestIDEcho: the server adopts the client's request identity and
// echoes it; without headers it mints one.
func TestRequestIDEcho(t *testing.T) {
	_, ts, _ := newTestServer(t)

	req, _ := http.NewRequest("GET", ts.URL+"/v1/db", nil)
	req.Header.Set("traceparent", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	req.Header.Set("X-Request-ID", "my-req-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "my-req-7" {
		t.Fatalf("X-Request-ID echo = %q, want my-req-7", got)
	}

	// No X-Request-ID: the traceparent's parent id stands in.
	req, _ = http.NewRequest("GET", ts.URL+"/v1/db", nil)
	req.Header.Set("traceparent", "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "b7ad6b7169203331" {
		t.Fatalf("X-Request-ID from traceparent = %q, want b7ad6b7169203331", got)
	}

	// No headers at all: the server mints an id.
	resp, err = http.Get(ts.URL + "/v1/db")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); len(got) != 16 {
		t.Fatalf("minted X-Request-ID = %q, want 16 hex chars", got)
	}
}

// TestClientStampsTraceHeaders: the Go client sends a well-formed
// traceparent whose span id doubles as X-Request-ID.
func TestClientStampsTraceHeaders(t *testing.T) {
	var gotTP, gotID string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotTP = r.Header.Get("traceparent")
		gotID = r.Header.Get("X-Request-ID")
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"databases":[]}`))
	}))
	defer ts.Close()
	if _, err := client.New(ts.URL).List(context.Background()); err != nil {
		t.Fatal(err)
	}
	trace, parent := parseTraceparent(gotTP)
	if trace == "" || parent == "" {
		t.Fatalf("client traceparent %q did not parse", gotTP)
	}
	if gotID != parent {
		t.Fatalf("X-Request-ID %q != traceparent parent id %q", gotID, parent)
	}
}

// TestExecProfileRetries is the conflict half of the acceptance
// criterion: a forced conflict retry shows up in the returned profile
// with the conflicting footprints, and the retry count matches the
// metrics delta.
func TestExecProfileRetries(t *testing.T) {
	s, _, c := newTestServer(t)
	ctx := context.Background()
	mustCreate(t, c, "db", nil)

	s.mu.RLock()
	db := s.dbs["db"]
	s.mu.RUnlock()
	var mu sync.Mutex
	injected := 0
	hooks.ConcurrentPreCommit = func(int) {
		mu.Lock()
		defer mu.Unlock()
		if injected == 0 {
			injected++
			if _, err := db.Exec("mode ridv.\nrules q(x: 99).\nend.\n"); err != nil {
				t.Error(err)
			}
		}
	}
	defer func() { hooks.ConcurrentPreCommit = nil }()

	retriesBefore := s.metrics.Counter("logres_module_retries_total").Value()
	res, err := c.ExecRequest(ctx, "db", client.ExecRequest{
		Module:  "mode ridv.\nrules p(x: 1).\nend.\n",
		Profile: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	if p == nil {
		t.Fatal("Profile: true returned no profile")
	}
	if p.RequestID == "" || p.TraceID == "" {
		t.Fatalf("profile identity = %q/%q, want non-empty", p.RequestID, p.TraceID)
	}
	if p.Retries != 1 || len(p.Conflicts) != 1 {
		t.Fatalf("profile retries = %d, conflicts = %d, want 1/1", p.Retries, len(p.Conflicts))
	}
	if p.BackoffNS <= 0 {
		t.Fatalf("profile backoff = %d, want > 0", p.BackoffNS)
	}
	if !strings.Contains(p.Conflicts[0].Footprints, "mine:") {
		t.Fatalf("conflict footprints = %q", p.Conflicts[0].Footprints)
	}
	if delta := s.metrics.Counter("logres_module_retries_total").Value() - retriesBefore; delta != int64(p.Retries) {
		t.Fatalf("metrics retries delta = %d, profile = %d", delta, p.Retries)
	}
	// The strata describe the committed attempt, not the aborted one.
	if len(p.Strata) == 0 || p.Rounds == 0 {
		t.Fatalf("profile strata/rounds = %d/%d, want all > 0", len(p.Strata), p.Rounds)
	}
	if p.WallNS <= 0 || p.EvalNS <= 0 || p.WallNS < p.EvalNS {
		t.Fatalf("profile wall/eval = %d/%d", p.WallNS, p.EvalNS)
	}
	if p.CommitPath == "" {
		t.Fatal("profile commit path empty")
	}
}

// TestExecProfileWAL is the durability half of the acceptance
// criterion: on a durable database the profile's WAL appends, bytes,
// and sync waits match the server metrics deltas for the same exec.
func TestExecProfileWAL(t *testing.T) {
	s := New(Options{DataDir: t.TempDir()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()
	mustCreate(t, c, "db", nil)

	m := s.metrics
	appendsBefore := m.Counter("logres_wal_appends_total").Value()
	bytesBefore := m.Counter("logres_wal_bytes_total").Value()
	syncsBefore := m.Counter("logres_wal_fsyncs_total").Value()

	res, err := c.ExecRequest(ctx, "db", client.ExecRequest{
		Module:  "mode ridv.\nrules p(x: 1).\nend.\n",
		Profile: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Profile
	if p == nil {
		t.Fatal("no profile")
	}
	if p.WALAppends == 0 || p.WALBytes == 0 || p.WALSyncs == 0 {
		t.Fatalf("profile WAL = appends %d bytes %d syncs %d, want all > 0", p.WALAppends, p.WALBytes, p.WALSyncs)
	}
	if p.WALSyncWaitNS <= 0 {
		t.Fatalf("profile WAL sync wait = %d, want > 0", p.WALSyncWaitNS)
	}
	if d := m.Counter("logres_wal_appends_total").Value() - appendsBefore; d != int64(p.WALAppends) {
		t.Fatalf("wal appends delta = %d, profile = %d", d, p.WALAppends)
	}
	if d := m.Counter("logres_wal_bytes_total").Value() - bytesBefore; d != p.WALBytes {
		t.Fatalf("wal bytes delta = %d, profile = %d", d, p.WALBytes)
	}
	if d := m.Counter("logres_wal_fsyncs_total").Value() - syncsBefore; d != int64(p.WALSyncs) {
		t.Fatalf("wal fsyncs delta = %d, profile = %d", d, p.WALSyncs)
	}
}

// TestQueryProfileTrailer: QueryProfile returns the per-stratum profile
// in the NDJSON trailer.
func TestQueryProfileTrailer(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()
	mustCreate(t, c, "db", nil)
	if _, err := c.Exec(ctx, "db", "mode ridv.\nrules p(x: 1).\nend.\n"); err != nil {
		t.Fatal(err)
	}

	ans, p, err := c.QueryProfile(ctx, "db", "?- p(x: X).")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 1 {
		t.Fatalf("rows = %d", len(ans.Rows))
	}
	if p == nil {
		t.Fatal("no trailer profile")
	}
	if p.RequestID == "" || p.Rounds == 0 || len(p.Strata) == 0 {
		t.Fatalf("trailer profile = %+v", p)
	}
	// A query commits nothing.
	if p.Retries != 0 || p.WALAppends != 0 {
		t.Fatalf("query profile carries write-side work: %+v", p)
	}
}

// TestProfileNotReturnedUnlessAsked: a plain exec response carries no
// profile.
func TestProfileNotReturnedUnlessAsked(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()
	mustCreate(t, c, "db", nil)
	res, err := c.Exec(ctx, "db", "mode ridv.\nrules p(x: 1).\nend.\n")
	if err != nil {
		t.Fatal(err)
	}
	if res.Profile != nil {
		t.Fatalf("unrequested profile = %+v", res.Profile)
	}
}

// TestHealthzReadyzDraining: liveness stays 200 through a drain;
// readiness flips to 503 as soon as draining starts.
func TestHealthzReadyzDraining(t *testing.T) {
	s, ts, _ := newTestServer(t)

	get := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}

	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz = %d", code)
	}

	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Draining: liveness still answers (the process is up), readiness
	// reports the instance out of rotation.
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz while draining = %d", code)
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", code)
	}
	var body struct {
		Ready    bool `json:"ready"`
		Draining bool `json:"draining"`
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if body.Ready || !body.Draining {
		t.Fatalf("readyz body = %+v", body)
	}
}

// TestReadyzDurableRecovery: a durable server is not ready until
// OpenDataDir finished replaying.
func TestReadyzDurableRecovery(t *testing.T) {
	s := New(Options{DataDir: t.TempDir()})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz before recovery = %d, want 503", resp.StatusCode)
	}

	if _, err := s.OpenDataDir(); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz after recovery = %d, want 200", resp.StatusCode)
	}
}

// TestDebugRequestsInspector: an in-flight exec is visible on
// /debug/requests with its identity, route, database, and phase.
func TestDebugRequestsInspector(t *testing.T) {
	_, ts, c := newTestServer(t)
	ctx := context.Background()
	mustCreate(t, c, "db", nil)

	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	hooks.ConcurrentPreCommit = func(int) {
		once.Do(func() { close(entered) })
		<-release
	}
	defer func() { hooks.ConcurrentPreCommit = nil }()

	execDone := make(chan error, 1)
	go func() {
		_, err := c.Exec(ctx, "db", "mode ridv.\nrules p(x: 1).\nend.\n")
		execDone <- err
	}()
	<-entered

	resp, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	var body struct {
		Requests []RequestInfo `json:"requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var exec *RequestInfo
	for i := range body.Requests {
		if body.Requests[i].Route == "exec" {
			exec = &body.Requests[i]
		}
	}
	if exec == nil {
		t.Fatalf("no exec request in %+v", body.Requests)
	}
	if exec.ID == "" || exec.DB != "db" || exec.ElapsedNS <= 0 {
		t.Fatalf("exec request = %+v", exec)
	}
	// The hook holds the apply between evaluation and commit.
	if exec.Phase != "eval" {
		t.Fatalf("exec phase = %q, want eval", exec.Phase)
	}
	if exec.Rounds == 0 {
		t.Fatalf("exec rounds = %d, want > 0", exec.Rounds)
	}

	close(release)
	if err := <-execDone; err != nil {
		t.Fatal(err)
	}

	// Finished requests leave the registry.
	resp, err = http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	body.Requests = nil
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, ri := range body.Requests {
		if ri.Route == "exec" {
			t.Fatalf("finished exec still registered: %+v", ri)
		}
	}
}

// TestShutdownDrainReport: when the grace period expires the error
// names the requests the drain was stuck on, and errors.Is still
// identifies the deadline.
func TestShutdownDrainReport(t *testing.T) {
	s, _, c := newTestServer(t)
	ctx := context.Background()
	mustCreate(t, c, "db", nil)

	entered := make(chan struct{})
	var once sync.Once
	hooks.ConcurrentPreCommit = func(int) {
		once.Do(func() { close(entered) })
		<-s.forceCtx.Done()
	}
	defer func() { hooks.ConcurrentPreCommit = nil }()

	execDone := make(chan error, 1)
	go func() {
		_, err := c.Exec(ctx, "db", "mode ridv.\nrules p(x: 1).\nend.\n")
		execDone <- err
	}()
	<-entered

	grace, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	err := s.Shutdown(grace)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
	msg := err.Error()
	if !strings.Contains(msg, "exec") || !strings.Contains(msg, "db=db") || !strings.Contains(msg, "phase=") {
		t.Fatalf("drain report %q does not name the stuck request", msg)
	}
	select {
	case <-execDone:
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight apply never unwound")
	}
}

// TestSlowQueryLog: an armed slow-query log records offenders as JSONL
// with identity and profile; fast requests are not logged.
func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	var mu sync.Mutex
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	s := New(Options{SlowQueryThreshold: time.Nanosecond, SlowQueryLog: w})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()
	mustCreate(t, c, "db", nil)
	if _, err := c.Exec(ctx, "db", "mode ridv.\nrules p(x: 1).\nend.\n"); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	mu.Unlock()
	// Threshold 1ns: both the create and the exec are offenders.
	if len(lines) < 2 {
		t.Fatalf("slow log lines = %d, want >= 2", len(lines))
	}
	var found bool
	for _, line := range lines {
		var rec struct {
			RequestID string          `json:"request_id"`
			Route     string          `json:"route"`
			DB        string          `json:"db"`
			Status    int             `json:"status"`
			ElapsedNS int64           `json:"elapsed_ns"`
			Profile   *client.Profile `json:"profile"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("slow log line %q: %v", line, err)
		}
		if rec.Route != "exec" {
			continue
		}
		found = true
		if rec.RequestID == "" || rec.DB != "db" || rec.Status != http.StatusOK || rec.ElapsedNS <= 0 {
			t.Fatalf("slow log record = %+v", rec)
		}
		// Arming the log forces collection, so the record carries the
		// actual slow execution's profile even though the request did
		// not ask for one.
		if rec.Profile == nil || rec.Profile.Rounds == 0 {
			t.Fatalf("slow log profile = %+v", rec.Profile)
		}
	}
	if !found {
		t.Fatalf("no exec record in slow log: %v", lines)
	}
}

type writerFunc func(p []byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
