package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"logres"
	"logres/client"
	"logres/internal/hooks"
)

const testSchema = `associations
  P = (x: integer);
  Q = (x: integer);
`

func newTestServer(t *testing.T) (*Server, *httptest.Server, *client.Client) {
	t.Helper()
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, client.New(ts.URL)
}

func mustCreate(t *testing.T, c *client.Client, name string, opts *client.DBOptions) {
	t.Helper()
	if err := c.Create(context.Background(), name, testSchema, opts); err != nil {
		t.Fatalf("create %s: %v", name, err)
	}
}

// TestServerLifecycle drives the whole registry + data-plane surface
// through the client: create, list, info, exec, query, instance,
// register, drop, and the not-found paths.
func TestServerLifecycle(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()
	mustCreate(t, c, "test", nil)

	if names, err := c.List(ctx); err != nil || len(names) != 1 || names[0] != "test" {
		t.Fatalf("List = %v, %v", names, err)
	}
	if err := c.Create(ctx, "test", testSchema, nil); err == nil {
		t.Fatal("duplicate create succeeded")
	} else if apiErr := asAPIError(t, err); apiErr.Status != http.StatusConflict || apiErr.Resp.Kind != client.KindExists {
		t.Fatalf("duplicate create = %v", apiErr)
	}

	res, err := c.Exec(ctx, "test", "mode ridv.\nrules p(x: 1).\nend.\n")
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != "RIDV" || res.Epoch == 0 {
		t.Fatalf("exec = %+v", res)
	}
	if _, err := c.Exec(ctx, "test", "mode ridv.\nrules p(x: 2).\nend.\n"); err != nil {
		t.Fatal(err)
	}

	ans, err := c.Query(ctx, "test", "?- p(x: X).")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Vars) != 1 || ans.Vars[0] != "X" || len(ans.Rows) != 2 {
		t.Fatalf("query = %+v", ans)
	}

	// A goal-carrying RIDI exec returns the answer inline.
	res, err = c.ExecRequest(ctx, "test", client.ExecRequest{Module: "goal ?- p(x: X).\nend.\n"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Answer == nil || len(res.Answer.Rows) != 2 {
		t.Fatalf("goal exec answer = %+v", res.Answer)
	}

	facts, err := c.Instance(ctx, "test")
	if err != nil {
		t.Fatal(err)
	}
	if len(facts) != 2 {
		t.Fatalf("instance facts = %+v", facts)
	}
	for _, f := range facts {
		if f.Pred != "p" || !strings.HasPrefix(f.Fact, "p(") {
			t.Fatalf("instance fact = %+v", f)
		}
	}

	if err := c.Register(ctx, "test", "module add_q.\nmode ridv.\nrules q(x: 10).\nend.\n"); err != nil {
		t.Fatal(err)
	}
	info, err := c.Info(ctx, "test")
	if err != nil {
		t.Fatal(err)
	}
	if info.Name != "test" || info.Epoch < 2 || len(info.Modules) != 1 || info.Modules[0] != "add_q" {
		t.Fatalf("info = %+v", info)
	}
	if !strings.Contains(info.Schema, "integer") {
		t.Fatalf("info schema = %q", info.Schema)
	}

	if err := c.Drop(ctx, "test"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(ctx, "test", "mode ridv.\nrules p(x: 3).\nend.\n"); err == nil {
		t.Fatal("exec on dropped database succeeded")
	} else if apiErr := asAPIError(t, err); apiErr.Status != http.StatusNotFound || apiErr.Resp.Kind != client.KindNotFound {
		t.Fatalf("dropped exec = %v", apiErr)
	}
	if err := c.Drop(ctx, "test"); err == nil {
		t.Fatal("double drop succeeded")
	}
}

func asAPIError(t *testing.T, err error) *client.APIError {
	t.Helper()
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v (%T), want *client.APIError", err, err)
	}
	return apiErr
}

// TestExecConflictMapsTo409 forces a deterministic commit conflict (a
// serial write lands in the validation window, retries disabled
// per-request) and checks the 409 body carries both footprints.
func TestExecConflictMapsTo409(t *testing.T) {
	s, _, c := newTestServer(t)
	ctx := context.Background()
	mustCreate(t, c, "db", nil)

	s.mu.RLock()
	db := s.dbs["db"]
	s.mu.RUnlock()
	hooks.ConcurrentPreCommit = func(int) {
		if _, err := db.Exec("mode ridv.\nrules q(x: 99).\nend.\n"); err != nil {
			t.Error(err)
		}
	}
	defer func() { hooks.ConcurrentPreCommit = nil }()

	_, err := c.ExecRequest(ctx, "db", client.ExecRequest{
		Module:     "mode ridv.\nrules p(x: 1).\nend.\n",
		MaxRetries: -1,
	})
	apiErr := asAPIError(t, err)
	if apiErr.Status != http.StatusConflict || apiErr.Resp.Kind != client.KindConflict {
		t.Fatalf("conflict response = %+v", apiErr)
	}
	// The serial competitor records a universal write.
	if apiErr.Resp.Pred != "*" {
		t.Fatalf("conflict pred = %q", apiErr.Resp.Pred)
	}
	if apiErr.Resp.Mine == nil || apiErr.Resp.Theirs == nil {
		t.Fatalf("conflict body missing footprints: %+v", apiErr.Resp)
	}
	if !apiErr.Resp.Theirs.Universal {
		t.Fatalf("theirs = %+v, want universal", apiErr.Resp.Theirs)
	}
	found := false
	for _, w := range apiErr.Resp.Mine.Writes {
		if w == "p" {
			found = true
		}
	}
	if !found {
		t.Fatalf("mine.writes = %v, want p", apiErr.Resp.Mine.Writes)
	}
}

// TestClientConflictRetryKnob: with WithConflictRetries the client
// re-submits after a 409 and the second attempt lands.
func TestClientConflictRetryKnob(t *testing.T) {
	s, ts, _ := newTestServer(t)
	c := client.New(ts.URL, client.WithConflictRetries(2), client.WithRetryBackoff(time.Millisecond, 4*time.Millisecond))
	ctx := context.Background()
	mustCreate(t, c, "db", nil)

	s.mu.RLock()
	db := s.dbs["db"]
	s.mu.RUnlock()
	var mu sync.Mutex
	conflictsInjected := 0
	hooks.ConcurrentPreCommit = func(int) {
		mu.Lock()
		defer mu.Unlock()
		if conflictsInjected == 0 {
			conflictsInjected++
			if _, err := db.Exec("mode ridv.\nrules q(x: 99).\nend.\n"); err != nil {
				t.Error(err)
			}
		}
	}
	defer func() { hooks.ConcurrentPreCommit = nil }()

	res, err := c.ExecRequest(ctx, "db", client.ExecRequest{
		Module:     "mode ridv.\nrules p(x: 1).\nend.\n",
		MaxRetries: -1, // server never retries: the client's knob does the work
	})
	if err != nil {
		t.Fatalf("client retry did not recover: %v", err)
	}
	if res.Epoch == 0 {
		t.Fatalf("exec = %+v", res)
	}
	mu.Lock()
	defer mu.Unlock()
	if conflictsInjected != 1 {
		t.Fatalf("conflicts injected = %d, want 1", conflictsInjected)
	}
}

// TestExecBudgetMapsTo422: an exhausted budget axis surfaces as 422
// with the axis named.
func TestExecBudgetMapsTo422(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()
	mustCreate(t, c, "db", &client.DBOptions{Budget: &client.BudgetSpec{MaxFacts: 2}})

	// Ground facts seed the baseline; the q rule derives five more,
	// blowing the two-fact budget.
	_, err := c.Exec(ctx, "db", `mode ridv.
rules
  p(x: 1). p(x: 2). p(x: 3). p(x: 4). p(x: 5).
  q(x: X) <- p(x: X).
end.
`)
	apiErr := asAPIError(t, err)
	if apiErr.Status != http.StatusUnprocessableEntity || apiErr.Resp.Kind != client.KindBudget {
		t.Fatalf("budget response = %+v", apiErr)
	}
	if apiErr.Resp.Axis != "facts" {
		t.Fatalf("budget axis = %q", apiErr.Resp.Axis)
	}
}

// TestExecParseErrorMapsTo400 and unknown database to 404.
func TestExecParseErrorMapsTo400(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()
	mustCreate(t, c, "db", nil)
	_, err := c.Exec(ctx, "db", "this is not a module")
	apiErr := asAPIError(t, err)
	if apiErr.Status != http.StatusBadRequest || apiErr.Resp.Kind != client.KindInvalid {
		t.Fatalf("parse error = %+v", apiErr)
	}
	if _, err := c.ExecRequest(ctx, "db", client.ExecRequest{Module: "mode ridv.\nrules p(x: 1).\nend.\n", Mode: "bogus"}); err == nil {
		t.Fatal("bogus mode accepted")
	}
}

// TestMapErrorCancellation pins the cancellation rows of the error
// table: client cancel → 499, evaluation deadline → 504.
func TestMapErrorCancellation(t *testing.T) {
	status, resp := mapError(&logres.CanceledError{Err: context.Canceled})
	if status != StatusClientClosedRequest || resp.Kind != client.KindCanceled {
		t.Fatalf("canceled = %d %q", status, resp.Kind)
	}
	status, resp = mapError(&logres.CanceledError{Err: context.DeadlineExceeded})
	if status != http.StatusGatewayTimeout || resp.Kind != client.KindDeadline {
		t.Fatalf("deadline = %d %q", status, resp.Kind)
	}
	status, resp = mapError(&logres.PanicError{Value: "boom"})
	if status != http.StatusInternalServerError || resp.Kind != client.KindPanic {
		t.Fatalf("panic = %d %q", status, resp.Kind)
	}
}

// TestQueryStreamChunks reads the raw NDJSON body: header, then rows
// split across multiple chunks of the requested size, then the
// trailer.
func TestQueryStreamChunks(t *testing.T) {
	_, ts, c := newTestServer(t)
	ctx := context.Background()
	mustCreate(t, c, "db", nil)
	var rules []string
	for i := 1; i <= 7; i++ {
		rules = append(rules, fmt.Sprintf("p(x: %d).", i))
	}
	if _, err := c.Exec(ctx, "db", "mode ridv.\nrules\n"+strings.Join(rules, "\n")+"\nend.\n"); err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(client.QueryRequest{Goal: "?- p(x: X).", ChunkSize: 2})
	resp, err := http.Post(ts.URL+"/v1/db/db/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// 1 header + ceil(7/2)=4 chunks + 1 trailer.
	if len(lines) != 6 {
		t.Fatalf("stream lines = %d: %q", len(lines), lines)
	}
	var header client.QueryHeader
	if err := json.Unmarshal([]byte(lines[0]), &header); err != nil || len(header.Vars) != 1 {
		t.Fatalf("header = %q: %v", lines[0], err)
	}
	total := 0
	for _, line := range lines[1:5] {
		var chunk client.QueryChunk
		if err := json.Unmarshal([]byte(line), &chunk); err != nil {
			t.Fatalf("chunk = %q: %v", line, err)
		}
		if len(chunk.Rows) == 0 || len(chunk.Rows) > 2 {
			t.Fatalf("chunk size = %d", len(chunk.Rows))
		}
		total += len(chunk.Rows)
	}
	var trailer client.QueryTrailer
	if err := json.Unmarshal([]byte(lines[5]), &trailer); err != nil || !trailer.Done || trailer.Total != 7 || total != 7 {
		t.Fatalf("trailer = %q (rows seen %d)", lines[5], total)
	}

	// The streaming client API sees the same rows.
	var streamed int
	vars, err := c.QueryStream(ctx, "db", client.QueryRequest{Goal: "?- p(x: X).", ChunkSize: 3}, func(rows [][]string) error {
		streamed += len(rows)
		return nil
	})
	if err != nil || len(vars) != 1 || streamed != 7 {
		t.Fatalf("QueryStream = vars %v rows %d err %v", vars, streamed, err)
	}
}

// TestShutdownDrainsInFlightApplies: an apply held in its validation
// window keeps Shutdown blocked; new requests get 503; once the apply
// releases, it completes with 200 and Shutdown returns.
func TestShutdownDrainsInFlightApplies(t *testing.T) {
	s, _, c := newTestServer(t)
	ctx := context.Background()
	mustCreate(t, c, "db", nil)

	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	hooks.ConcurrentPreCommit = func(int) {
		once.Do(func() { close(entered) })
		<-release
	}
	defer func() { hooks.ConcurrentPreCommit = nil }()

	execDone := make(chan error, 1)
	go func() {
		_, err := c.Exec(ctx, "db", "mode ridv.\nrules p(x: 1).\nend.\n")
		execDone <- err
	}()
	<-entered

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(context.Background()) }()

	// Draining: new data-plane requests are rejected with 503.
	deadline := time.After(2 * time.Second)
	for {
		_, err := c.List(ctx)
		if err != nil {
			apiErr := asAPIError(t, err)
			if apiErr.Status != http.StatusServiceUnavailable || apiErr.Resp.Kind != client.KindDraining {
				t.Fatalf("draining response = %+v", apiErr)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("server never started draining")
		case <-time.After(time.Millisecond):
		}
	}

	// The in-flight apply is still running; Shutdown must not return.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned %v with an apply in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-execDone; err != nil {
		t.Fatalf("drained apply failed: %v", err)
	}
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("Shutdown = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Shutdown did not return after the apply drained")
	}
}

// TestShutdownGraceExpiryCancelsApplies: when the grace context
// expires, in-flight evaluations are canceled through their contexts
// and the handler unwinds (the engine's all-or-nothing abort keeps the
// database state untouched).
func TestShutdownGraceExpiryCancelsApplies(t *testing.T) {
	s, _, c := newTestServer(t)
	ctx := context.Background()
	// A tight rounds budget is not enough to stop this module: it
	// recurses under MaxRounds-free default, so use a long chain the
	// worker would grind through, then rely on cancellation.
	mustCreate(t, c, "db", nil)

	// Hold the apply in its validation window so it is mid-flight when
	// the grace period expires; the hook returns when the request
	// context is canceled (the handler's context merge fires cancel).
	entered := make(chan struct{})
	var once sync.Once
	hooks.ConcurrentPreCommit = func(int) {
		once.Do(func() { close(entered) })
		<-s.forceCtx.Done()
	}
	defer func() { hooks.ConcurrentPreCommit = nil }()

	execDone := make(chan error, 1)
	go func() {
		_, err := c.Exec(ctx, "db", "mode ridv.\nrules p(x: 1).\nend.\n")
		execDone <- err
	}()
	<-entered

	grace, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(grace); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
	select {
	case <-execDone:
		// The apply unblocked (it either committed after the hook
		// released or aborted canceled — both leave consistent state).
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight apply never unwound after force cancel")
	}
	// The database state is consistent: either the module landed fully
	// or not at all.
	s.mu.RLock()
	db := s.dbs["db"]
	s.mu.RUnlock()
	if n := db.EDBCount("p"); n != 0 && n != 1 {
		t.Fatalf("p count = %d, want 0 or 1", n)
	}
}

// TestObservabilityMountedBesideDataPlane: one listener serves both
// planes, and the read-only guard holds on the mounted routes.
func TestObservabilityMountedBesideDataPlane(t *testing.T) {
	_, ts, c := newTestServer(t)
	ctx := context.Background()
	mustCreate(t, c, "db", nil)
	if _, err := c.Exec(ctx, "db", "mode ridv.\nrules p(x: 1).\nend.\n"); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"logres_http_requests_total", "logres_module_commits_total"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	post, err := http.Post(ts.URL+"/metrics", "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics = %d, want 405", post.StatusCode)
	}
}

// TestConcurrentDisjointExecsNoConflicts: many clients applying
// modules over disjoint predicates through the live server all succeed
// with zero conflicts — the optimistic path carries over the wire.
func TestConcurrentDisjointExecsNoConflicts(t *testing.T) {
	s, _, c := newTestServer(t)
	ctx := context.Background()
	mustCreate(t, c, "db", nil)

	const workers, per = 2, 4
	var wg sync.WaitGroup
	errs := make(chan error, workers*per)
	preds := []string{"p", "q"}
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				module := fmt.Sprintf("mode ridv.\nrules %s(x: %d).\nend.\n", preds[g], i)
				if _, err := c.Exec(ctx, "db", module); err != nil {
					errs <- err
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := s.Metrics().Counter("logres_module_conflicts_total").Value(); n != 0 {
		t.Fatalf("disjoint execs produced %d conflicts", n)
	}
	for _, pred := range preds {
		ans, err := c.Query(ctx, "db", fmt.Sprintf("?- %s(x: X).", pred))
		if err != nil {
			t.Fatal(err)
		}
		if len(ans.Rows) != per {
			t.Fatalf("%s rows = %d, want %d", pred, len(ans.Rows), per)
		}
	}
}
