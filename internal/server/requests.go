package server

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"logres/client"
	"logres/internal/obs"

	"crypto/rand"
	"encoding/hex"
	"strings"
)

// Request-scoped observability: every data-plane request gets an
// obs.Span minted from (or issued to) the client's W3C traceparent and
// X-Request-ID headers, a registry entry for the /debug/requests
// inspector, and — when profiling is requested or the slow-query log is
// armed — a profile collector fanned into the evaluation's tracer.

// newRequestSpan extracts the request identity from the inbound headers
// or mints one: X-Request-ID is honoured verbatim (bounded, one line),
// traceparent is parsed per W3C trace-context (version-format
// `00-<32 hex>-<16 hex>-<2 hex>`). A missing X-Request-ID falls back to
// the traceparent's parent id, then to a fresh random id.
func newRequestSpan(r *http.Request) *obs.Span {
	traceID, parentID := parseTraceparent(r.Header.Get("traceparent"))
	reqID := sanitizeRequestID(r.Header.Get("X-Request-ID"))
	if reqID == "" {
		reqID = parentID
	}
	if reqID == "" {
		reqID = mintRequestID()
	}
	return obs.NewSpan(reqID, traceID, parentID)
}

// parseTraceparent returns the trace-id and parent-id fields of a
// well-formed traceparent header ("", "" otherwise — a malformed header
// is ignored, never an error).
func parseTraceparent(h string) (traceID, parentID string) {
	parts := strings.Split(h, "-")
	if len(parts) != 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return "", ""
	}
	for _, p := range parts {
		if !isHex(p) {
			return "", ""
		}
	}
	// All-zero trace or parent ids are invalid per the spec.
	if strings.Trim(parts[1], "0") == "" || strings.Trim(parts[2], "0") == "" {
		return "", ""
	}
	return parts[1], parts[2]
}

func isHex(s string) bool {
	for _, r := range s {
		if !(('0' <= r && r <= '9') || ('a' <= r && r <= 'f') || ('A' <= r && r <= 'F')) {
			return false
		}
	}
	return true
}

// sanitizeRequestID bounds a client-supplied request id: printable,
// single-line, at most 128 bytes (ids land in log lines and response
// headers).
func sanitizeRequestID(id string) string {
	if len(id) > 128 {
		id = id[:128]
	}
	for _, r := range id {
		if r < 0x20 || r == 0x7f {
			return ""
		}
	}
	return id
}

// mintRequestID returns a fresh 8-byte random id in hex.
func mintRequestID() string {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return "0000000000000001"
	}
	return hex.EncodeToString(buf[:])
}

// requestEntry is one in-flight request in the registry.
type requestEntry struct {
	id    uint64
	span  *obs.Span
	route string
	db    string
}

// requestRegistry tracks in-flight data-plane requests. It is
// lock-cheap by design: the mutex guards only map insert/delete/copy
// (one lock op per request edge), while the per-request live state
// (phase, rounds, retries, budget) lives in the span's atomics and is
// read lock-free.
type requestRegistry struct {
	mu   sync.Mutex
	seq  uint64
	live map[uint64]*requestEntry
}

func newRequestRegistry() *requestRegistry {
	return &requestRegistry{live: map[uint64]*requestEntry{}}
}

func (g *requestRegistry) add(span *obs.Span, route, db string) *requestEntry {
	e := &requestEntry{span: span, route: route, db: db}
	g.mu.Lock()
	g.seq++
	e.id = g.seq
	g.live[e.id] = e
	g.mu.Unlock()
	return e
}

func (g *requestRegistry) remove(e *requestEntry) {
	g.mu.Lock()
	delete(g.live, e.id)
	g.mu.Unlock()
}

// snapshot returns the in-flight entries in arrival order.
func (g *requestRegistry) snapshot() []*requestEntry {
	g.mu.Lock()
	out := make([]*requestEntry, 0, len(g.live))
	for _, e := range g.live {
		out = append(out, e)
	}
	g.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// RequestInfo is one /debug/requests line: an in-flight request's
// identity, what it is doing, and how much it has consumed.
type RequestInfo struct {
	ID      string `json:"id"`
	TraceID string `json:"trace_id,omitempty"`
	Route   string `json:"route"`
	DB      string `json:"db,omitempty"`
	// Phase is what the request is doing right now ("decode", "eval",
	// "commit", "backoff", "wal", "stream").
	Phase     string `json:"phase"`
	ElapsedNS int64  `json:"elapsed_ns"`
	// Rounds/Facts/Retries are the live evaluation counters; Budget is
	// the largest budget-axis consumption observed so far.
	Rounds  int64 `json:"rounds,omitempty"`
	Facts   int64 `json:"facts,omitempty"`
	Retries int64 `json:"retries,omitempty"`
	Budget  int64 `json:"budget,omitempty"`
}

// inflightRequests renders the registry for /debug/requests and for
// Shutdown's drain report.
func (g *requestRegistry) inflightRequests(now time.Time) []RequestInfo {
	entries := g.snapshot()
	out := make([]RequestInfo, 0, len(entries))
	for _, e := range entries {
		out = append(out, RequestInfo{
			ID:        e.span.RequestID,
			TraceID:   e.span.TraceID,
			Route:     e.route,
			DB:        e.db,
			Phase:     e.span.Phase(),
			ElapsedNS: now.Sub(e.span.Start).Nanoseconds(),
			Rounds:    e.span.Rounds(),
			Facts:     e.span.Facts(),
			Retries:   e.span.Retries(),
			Budget:    e.span.BudgetUsed(),
		})
	}
	return out
}

// describe summarizes the in-flight requests in one line, for the
// drain-timeout error ("exec id=4f12 db=bench phase=eval elapsed=1.2s").
func (g *requestRegistry) describe(now time.Time) string {
	infos := g.inflightRequests(now)
	if len(infos) == 0 {
		return ""
	}
	var b strings.Builder
	for i, ri := range infos {
		if i > 0 {
			b.WriteString(", ")
		}
		fmtElapsed := time.Duration(ri.ElapsedNS).Round(time.Millisecond)
		b.WriteString(ri.Route + " id=" + ri.ID)
		if ri.DB != "" {
			b.WriteString(" db=" + ri.DB)
		}
		b.WriteString(" phase=" + ri.Phase + " elapsed=" + fmtElapsed.String())
	}
	return b.String()
}

// handleDebugRequests serves GET /debug/requests: the in-flight request
// inspector.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Requests []RequestInfo `json:"requests"`
	}{s.requests.inflightRequests(time.Now())})
}

// slowLog is the slow-query JSONL log: requests whose handler ran
// longer than the threshold are recorded with their identity and full
// profile. When armed it forces profile collection for every data-plane
// request, so an offender's record always carries the profile of the
// actual slow execution (a post-hoc re-run would not reproduce it).
type slowLog struct {
	threshold time.Duration
	mu        sync.Mutex
	w         io.Writer
}

func (l *slowLog) armed() bool { return l != nil && l.threshold > 0 && l.w != nil }

// slowQueryRecord is one slow-query JSONL line.
type slowQueryRecord struct {
	Time      string          `json:"time"`
	RequestID string          `json:"request_id"`
	TraceID   string          `json:"trace_id,omitempty"`
	Route     string          `json:"route"`
	DB        string          `json:"db,omitempty"`
	Status    int             `json:"status"`
	ElapsedNS int64           `json:"elapsed_ns"`
	Profile   *client.Profile `json:"profile,omitempty"`
}

func (l *slowLog) maybeLog(span *obs.Span, route, db string, status int, elapsed time.Duration) {
	if !l.armed() || elapsed < l.threshold {
		return
	}
	rec := slowQueryRecord{
		Time:      time.Now().UTC().Format(time.RFC3339Nano),
		RequestID: span.RequestID,
		TraceID:   span.TraceID,
		Route:     route,
		DB:        db,
		Status:    status,
		ElapsedNS: elapsed.Nanoseconds(),
	}
	if col := span.Collector(); col != nil {
		p := col.Profile(elapsed)
		p.RequestID, p.TraceID = span.RequestID, span.TraceID
		rec.Profile = profileJSON(p)
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	_, _ = l.w.Write(append(line, '\n'))
}

// profileJSON converts the engine's profile into the wire form (the
// client package cannot depend on internal/obs, so the shape is
// mirrored field by field).
func profileJSON(p *obs.Profile) *client.Profile {
	if p == nil {
		return nil
	}
	out := &client.Profile{
		RequestID:     p.RequestID,
		TraceID:       p.TraceID,
		WallNS:        p.WallNS,
		EvalNS:        p.EvalNS,
		Rounds:        p.Rounds,
		Firings:       p.Firings,
		Facts:         p.Facts,
		Retries:       p.Retries,
		BackoffNS:     p.BackoffNS,
		CommitPath:    p.CommitPath,
		WALAppends:    p.WALAppends,
		WALBytes:      p.WALBytes,
		WALSyncs:      p.WALSyncs,
		WALSyncWaitNS: p.WALSyncWaitNS,
		Abort:         p.Abort,
	}
	for _, st := range p.Strata {
		ws := client.StratumProfile{
			Stratum:    st.Stratum,
			Mode:       st.Mode,
			Vectorized: st.Vectorized,
			Rounds:     st.Rounds,
			WallNS:     st.WallNS,
			Firings:    st.Firings,
			Delta:      st.Delta,
			Facts:      st.Facts,
		}
		for _, k := range st.Kernels {
			ws.Kernels = append(ws.Kernels, client.KernelProfile{Kernel: k.Kernel, Calls: k.Calls, Rows: k.Rows})
		}
		out.Strata = append(out.Strata, ws)
	}
	for _, c := range p.Conflicts {
		out.Conflicts = append(out.Conflicts, client.ConflictProfile{Attempt: c.Attempt, Pred: c.Pred, Footprints: c.Footprints})
	}
	return out
}

// handleHealthz is the liveness probe: the process is up and serving.
// It answers while draining (liveness must not fail a shutting-down
// instance — that is readiness's job).
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{"ok"})
}

// handleReadyz is the readiness probe: 200 only when the server accepts
// data-plane traffic — false while draining and false until startup
// recovery of the data directory (OpenDataDir) has finished replaying.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	draining := s.draining.Load()
	ready := s.ready.Load() && !draining
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, struct {
		Ready      bool `json:"ready"`
		Draining   bool `json:"draining"`
		Recovering bool `json:"recovering"`
	}{ready, draining, !s.ready.Load()})
}
