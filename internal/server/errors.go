package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"logres"
	"logres/client"
)

// StatusClientClosedRequest is the non-standard status (nginx's 499)
// reported when the client canceled its request mid-evaluation; the
// engine aborted with a *CanceledError and the database state is
// untouched.
const StatusClientClosedRequest = 499

// mapError converts an engine error into its wire form: the HTTP
// status and the typed ErrorResponse body. The table (DESIGN.md §10):
//
//	*ConflictError                  409  kind=conflict  (both footprints)
//	*BudgetError (any axis)         422  kind=budget    (axis named)
//	*CanceledError → ctx.Canceled   499  kind=canceled
//	*CanceledError → DeadlineExceeded 504 kind=deadline
//	*PanicError                     500  kind=panic
//	anything else (parse/reject)    400  kind=invalid
func mapError(err error) (int, client.ErrorResponse) {
	var conflict *logres.ConflictError
	if errors.As(err, &conflict) {
		return http.StatusConflict, client.ErrorResponse{
			Error:   err.Error(),
			Kind:    client.KindConflict,
			Pred:    conflict.Pred,
			Retries: conflict.Retries,
			Mine:    footprintJSON(conflict.Mine),
			Theirs:  footprintJSON(conflict.Theirs),
		}
	}
	var budget *logres.BudgetError
	if errors.As(err, &budget) {
		return http.StatusUnprocessableEntity, client.ErrorResponse{
			Error: err.Error(),
			Kind:  client.KindBudget,
			Axis:  string(budget.Axis),
		}
	}
	var canceled *logres.CanceledError
	if errors.As(err, &canceled) {
		if errors.Is(canceled, context.DeadlineExceeded) {
			return http.StatusGatewayTimeout, client.ErrorResponse{Error: err.Error(), Kind: client.KindDeadline}
		}
		return StatusClientClosedRequest, client.ErrorResponse{Error: err.Error(), Kind: client.KindCanceled}
	}
	var panicked *logres.PanicError
	if errors.As(err, &panicked) {
		return http.StatusInternalServerError, client.ErrorResponse{Error: err.Error(), Kind: client.KindPanic}
	}
	return http.StatusBadRequest, client.ErrorResponse{Error: err.Error(), Kind: client.KindInvalid}
}

func footprintJSON(fp logres.Footprint) *client.FootprintJSON {
	return &client.FootprintJSON{Reads: fp.Reads, Writes: fp.Writes, Universal: fp.Universal}
}

// writeError sends one ErrorResponse body with the given status.
func writeError(w http.ResponseWriter, status int, resp client.ErrorResponse) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(resp)
}

// writeEngineError maps and sends an engine error.
func writeEngineError(w http.ResponseWriter, err error) {
	status, resp := mapError(err)
	writeError(w, status, resp)
}
