package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"logres"
	"logres/client"
)

// newDurableServer builds a server persisting into dir; restartable by
// calling it again with the same dir.
func newDurableServer(t *testing.T, dir string) (*Server, *httptest.Server, *client.Client) {
	t.Helper()
	s := New(Options{DataDir: dir, Fsync: logres.FsyncAlways})
	if _, err := s.OpenDataDir(); err != nil {
		t.Fatalf("OpenDataDir: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts, client.New(ts.URL)
}

// TestDurableServerSurvivesRestart commits through the API, tears the
// server down, and recovers the registry from the data directory: the
// epoch, the facts, and the recovery report must all survive.
func TestDurableServerSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	_, ts1, c1 := newDurableServer(t, dir)
	mustCreate(t, c1, "orders", nil)
	if _, err := c1.Exec(ctx, "orders", "mode ridv.\nrules p(x: 1).\nend.\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Exec(ctx, "orders", "mode ridv.\nrules p(x: 2).\nend.\n"); err != nil {
		t.Fatal(err)
	}
	info, err := c1.Info(ctx, "orders")
	if err != nil {
		t.Fatal(err)
	}
	if info.Durability == nil {
		t.Fatal("created database reports no durability")
	}
	if info.Durability.Epoch != info.Epoch || info.Durability.Fsync != "always" {
		t.Fatalf("durability = %+v vs epoch %d", info.Durability, info.Epoch)
	}
	if info.Recovery != nil {
		t.Fatalf("fresh database reports a recovery: %+v", info.Recovery)
	}
	ts1.Close()

	s2, _, c2 := newDurableServer(t, dir)
	names, err := c2.List(ctx)
	if err != nil || len(names) != 1 || names[0] != "orders" {
		t.Fatalf("recovered registry = %v, %v", names, err)
	}
	info2, err := c2.Info(ctx, "orders")
	if err != nil {
		t.Fatal(err)
	}
	if info2.Epoch != info.Epoch {
		t.Fatalf("recovered epoch %d != committed %d", info2.Epoch, info.Epoch)
	}
	if info2.Recovery == nil || info2.Recovery.Epoch != info.Epoch || info2.Recovery.TornTail != "" {
		t.Fatalf("recovery info = %+v", info2.Recovery)
	}
	ans, err := c2.Query(ctx, "orders", "?- p(x: X).")
	if err != nil || len(ans.Rows) != 2 {
		t.Fatalf("recovered query = %+v, %v", ans, err)
	}
	// The recovered database keeps committing durably.
	if _, err := c2.Exec(ctx, "orders", "mode ridv.\nrules p(x: 3).\nend.\n"); err != nil {
		t.Fatal(err)
	}
	if err := s2.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown after drain: %v", err)
	}
}

// TestDurableDropParksDirectory drops a durable database and checks
// the data directory was renamed aside, freeing the name for an
// immediate fresh create.
func TestDurableDropParksDirectory(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	_, _, c := newDurableServer(t, dir)
	mustCreate(t, c, "tmp", nil)
	if _, err := c.Exec(ctx, "tmp", "mode ridv.\nrules p(x: 1).\nend.\n"); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop(ctx, "tmp"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "tmp")); !os.IsNotExist(err) {
		t.Fatalf("dropped directory still present: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	parked := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "tmp.dropped.") {
			parked++
		}
	}
	if parked != 1 {
		t.Fatalf("parked directories = %d, want 1", parked)
	}
	// The name is free again, and the new database starts fresh.
	mustCreate(t, c, "tmp", nil)
	info, err := c.Info(ctx, "tmp")
	if err != nil || info.Epoch != 0 {
		t.Fatalf("recreated info = %+v, %v", info, err)
	}
}

// TestDurableDroppedDirsSkippedOnRecovery: parked directories do not
// come back as databases after a restart.
func TestDurableDroppedDirsSkippedOnRecovery(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	_, ts, c := newDurableServer(t, dir)
	mustCreate(t, c, "keep", nil)
	mustCreate(t, c, "gone", nil)
	if err := c.Drop(ctx, "gone"); err != nil {
		t.Fatal(err)
	}
	ts.Close()

	_, _, c2 := newDurableServer(t, dir)
	names, err := c2.List(ctx)
	if err != nil || len(names) != 1 || names[0] != "keep" {
		t.Fatalf("recovered registry = %v, %v", names, err)
	}
}

// TestQueryAsOf reads the database at past epochs through the wire.
func TestQueryAsOf(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	_, _, c := newDurableServer(t, dir)
	mustCreate(t, c, "hist", nil)
	for i := 1; i <= 3; i++ {
		mod := "mode ridv.\nrules p(x: " + string(rune('0'+i)) + ").\nend.\n"
		if _, err := c.Exec(ctx, "hist", mod); err != nil {
			t.Fatal(err)
		}
	}
	for epoch := 1; epoch <= 3; epoch++ {
		var rows int
		_, err := c.QueryStream(ctx, "hist",
			client.QueryRequest{Goal: "?- p(x: X).", AsOf: uint64(epoch)},
			func(chunk [][]string) error { rows += len(chunk); return nil })
		if err != nil {
			t.Fatalf("as_of %d: %v", epoch, err)
		}
		if rows != epoch {
			t.Fatalf("as_of %d: rows = %d", epoch, rows)
		}
	}
	// A future epoch is a client error.
	_, err := c.QueryStream(ctx, "hist",
		client.QueryRequest{Goal: "?- p(x: X).", AsOf: 99}, func([][]string) error { return nil })
	apiErr := asAPIError(t, err)
	if apiErr.Status != http.StatusBadRequest || apiErr.Resp.Kind != client.KindInvalid {
		t.Fatalf("future as_of = %v", apiErr)
	}
}

// TestQueryAsOfRequiresDurability: an in-memory database has no
// history to read.
func TestQueryAsOfRequiresDurability(t *testing.T) {
	_, _, c := newTestServer(t)
	ctx := context.Background()
	mustCreate(t, c, "mem", nil)
	if _, err := c.Exec(ctx, "mem", "mode ridv.\nrules p(x: 1).\nend.\n"); err != nil {
		t.Fatal(err)
	}
	_, err := c.QueryStream(ctx, "mem",
		client.QueryRequest{Goal: "?- p(x: X).", AsOf: 1}, func([][]string) error { return nil })
	apiErr := asAPIError(t, err)
	if apiErr.Status != http.StatusBadRequest {
		t.Fatalf("as_of on in-memory db = %v", apiErr)
	}
}

// TestDrainingResponseCarriesRetryAfter: the shutdown gate advertises
// its backoff hint.
func TestDrainingResponseCarriesRetryAfter(t *testing.T) {
	s, ts, _ := newTestServer(t)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/v1/db")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("Retry-After = %q", resp.Header.Get("Retry-After"))
	}
}

// TestValidateDBNameRejectsTraversal: names are data-directory
// components on durable servers, so the dot names must never pass.
func TestValidateDBNameRejectsTraversal(t *testing.T) {
	for _, name := range []string{".", "..", "", "a/b", strings.Repeat("x", 129)} {
		if err := validateDBName(name); err == nil {
			t.Fatalf("name %q accepted", name)
		}
	}
	for _, name := range []string{"a", "snap.shot", "...", "A-1_b"} {
		if err := validateDBName(name); err != nil {
			t.Fatalf("name %q rejected: %v", name, err)
		}
	}
	// Through the API too: creating ".." on a durable server must not
	// write outside the data directory.
	dir := t.TempDir()
	s, _, _ := newDurableServer(t, dir)
	if _, err := s.Create("..", testSchema); err == nil {
		t.Fatal("Create(\"..\") accepted")
	}
}

// TestDurableCreateRace: concurrent creates of one name get exactly
// one directory and one winner.
func TestDurableCreateRace(t *testing.T) {
	dir := t.TempDir()
	s, _, _ := newDurableServer(t, dir)
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			_, err := s.Create("same", testSchema)
			errs <- err
		}()
	}
	winners := 0
	for i := 0; i < 8; i++ {
		if err := <-errs; err == nil {
			winners++
		}
	}
	if winners != 1 {
		t.Fatalf("winners = %d, want 1", winners)
	}
}
