package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"logres"
	"logres/client"
)

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}

func (s *Server) testDB(name string) *logres.Database {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dbs[name]
}

// TestSubscribeStreamsDiffs drives the live-subscription round trip
// through the real client: header pins the start epoch, every
// state-changing commit delivers exactly one DiffEvent in epoch order
// (including the empty diff of a rule-only commit), and canceling the
// context unsubscribes.
func TestSubscribeStreamsDiffs(t *testing.T) {
	s, _, c := newTestServer(t)
	ctx := context.Background()
	mustCreate(t, c, "test", &client.DBOptions{Incremental: true})
	if info, err := c.Info(ctx, "test"); err != nil || !info.Incremental {
		t.Fatalf("Info = %+v, %v (want incremental)", info, err)
	}

	subCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	events := make(chan client.DiffEvent, 16)
	done := make(chan error, 1)
	var header *client.SubscribeHeader
	go func() {
		h, err := c.Subscribe(subCtx, "test", client.SubscribeRequest{}, func(ev client.DiffEvent) error {
			events <- ev
			return nil
		})
		header = h
		done <- err
	}()
	waitFor(t, func() bool { return s.testDB("test").Subscribers() == 1 })

	// Commit 1: install a derivation rule — state-changing, but with no
	// p facts the derived instance is unchanged: an empty diff.
	if _, err := c.Exec(ctx, "test", "mode radv.\nrules\n  q(x: X) <- p(x: X).\nend.\n"); err != nil {
		t.Fatal(err)
	}
	// Commit 2: a base fact plus its derived consequence.
	if _, err := c.Exec(ctx, "test", "mode ridv.\nrules\n  p(x: 1).\nend.\n"); err != nil {
		t.Fatal(err)
	}
	// Commit 3: deletion — both facts leave the instance.
	if _, err := c.Exec(ctx, "test", "mode rddv.\nrules\n  p(x: 1).\nend.\n"); err != nil {
		t.Fatal(err)
	}

	var got []client.DiffEvent
	for len(got) < 3 {
		select {
		case ev := <-events:
			got = append(got, ev)
		case err := <-done:
			t.Fatalf("subscription ended early: %v", err)
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out with %d events", len(got))
		}
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("Subscribe after cancel = %v, want context.Canceled", err)
	}
	if header == nil || header.Epoch != 0 {
		t.Fatalf("header = %+v, want epoch 0", header)
	}
	for i, ev := range got {
		if ev.Epoch != uint64(i)+1 {
			t.Fatalf("event %d epoch = %d, want %d", i, ev.Epoch, i+1)
		}
	}
	if len(got[0].Adds) != 0 || len(got[0].Removes) != 0 {
		t.Fatalf("rule-only commit diff = %+v, want empty", got[0])
	}
	wantAdds := map[string]bool{"p": true, "q": true}
	if len(got[1].Adds) != 2 || len(got[1].Removes) != 0 {
		t.Fatalf("insert diff = %+v", got[1])
	}
	for _, f := range got[1].Adds {
		if !wantAdds[f.Pred] || !strings.Contains(f.Fact, "x: 1") {
			t.Fatalf("insert diff add = %+v", f)
		}
	}
	if len(got[2].Adds) != 0 || len(got[2].Removes) != 2 {
		t.Fatalf("delete diff = %+v", got[2])
	}
}

// TestSubscribePredFilter: a predicate-filtered subscription still gets
// every epoch but only the subscribed facts.
func TestSubscribePredFilter(t *testing.T) {
	s, _, c := newTestServer(t)
	ctx := context.Background()
	mustCreate(t, c, "test", &client.DBOptions{Incremental: true})
	if _, err := c.Exec(ctx, "test", "mode radv.\nrules\n  q(x: X) <- p(x: X).\nend.\n"); err != nil {
		t.Fatal(err)
	}

	subCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	events := make(chan client.DiffEvent, 16)
	done := make(chan error, 1)
	go func() {
		_, err := c.Subscribe(subCtx, "test", client.SubscribeRequest{Preds: []string{"q"}}, func(ev client.DiffEvent) error {
			events <- ev
			return nil
		})
		done <- err
	}()
	waitFor(t, func() bool { return s.testDB("test").Subscribers() == 1 })
	if _, err := c.Exec(ctx, "test", "mode ridv.\nrules\n  p(x: 7).\nend.\n"); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-events:
		if len(ev.Adds) != 1 || ev.Adds[0].Pred != "q" {
			t.Fatalf("filtered diff = %+v, want only q", ev)
		}
	case err := <-done:
		t.Fatalf("subscription ended early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("no diff arrived")
	}
}

// TestSubscribeRequiresIncremental: subscribing to a scratch database
// is a 400 with kind "invalid".
func TestSubscribeRequiresIncremental(t *testing.T) {
	_, _, c := newTestServer(t)
	mustCreate(t, c, "test", nil)
	_, err := c.Subscribe(context.Background(), "test", client.SubscribeRequest{}, func(client.DiffEvent) error { return nil })
	apiErr := asAPIError(t, err)
	if apiErr.Status != http.StatusBadRequest || apiErr.Resp.Kind != client.KindInvalid {
		t.Fatalf("subscribe without incremental = %v", apiErr)
	}
}

// gateWriter is an http.ResponseWriter whose Write blocks until the
// test releases it, simulating a consumer that stops reading: one
// token on entered per Write call, one receive from release to
// proceed.
type gateWriter struct {
	header  http.Header
	entered chan struct{}
	release chan struct{}
	mu      sync.Mutex
	buf     bytes.Buffer
}

func (w *gateWriter) Header() http.Header { return w.header }
func (w *gateWriter) WriteHeader(int)     {}
func (w *gateWriter) Write(p []byte) (int, error) {
	w.entered <- struct{}{}
	<-w.release
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

// TestSubscribeSlowConsumerErrorLine pins the backpressure contract at
// the wire: with a 1-deep buffer and a consumer stuck mid-write,
// commits beyond the buffer disconnect the subscription, commits are
// never blocked, and the stream ends with a "slow_consumer" error
// line after the delivered diffs.
func TestSubscribeSlowConsumerErrorLine(t *testing.T) {
	s := New(Options{})
	db, err := s.Create("test", testSchema, logres.WithIncremental(true))
	if err != nil {
		t.Fatal(err)
	}

	body := bytes.NewBufferString(`{"buffer": 1}`)
	r := httptest.NewRequest(http.MethodPost, "/v1/db/test/subscribe", body)
	r.SetPathValue("name", "test")
	w := &gateWriter{header: http.Header{}, entered: make(chan struct{}), release: make(chan struct{})}
	handlerDone := make(chan struct{})
	go func() {
		s.handleSubscribe(w, r)
		close(handlerDone)
	}()

	// Header writes through; the next write (the first diff) blocks.
	<-w.entered
	w.release <- struct{}{}
	if _, err := db.Exec("mode ridv.\nrules\n  p(x: 1).\nend.\n"); err != nil {
		t.Fatal(err)
	}
	<-w.entered // handler is now stuck writing diff 1

	// Diff 2 parks in the 1-deep buffer; diff 3 finds it full and
	// disconnects. Neither commit blocks on the stuck subscriber.
	for i := 2; i <= 3; i++ {
		done := make(chan error, 1)
		go func(i int) {
			_, err := db.Exec("mode ridv.\nrules\n  p(x: " + string(rune('0'+i)) + ").\nend.\n")
			done <- err
		}(i)
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("commit %d blocked on a slow subscriber", i)
		}
	}
	if db.Subscribers() != 0 {
		t.Fatalf("%d subscribers left after overflow", db.Subscribers())
	}

	// Release the stuck write and the rest of the stream: diff 1, the
	// buffered diff 2, then the error line.
	w.release <- struct{}{}
	for {
		select {
		case <-w.entered:
			w.release <- struct{}{}
		case <-handlerDone:
			goto drained
		case <-time.After(5 * time.Second):
			t.Fatal("handler did not finish")
		}
	}
drained:
	w.mu.Lock()
	lines := strings.Split(strings.TrimSpace(w.buf.String()), "\n")
	w.mu.Unlock()
	if len(lines) != 4 {
		t.Fatalf("stream = %d lines, want header + 2 diffs + error:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	var errLine struct {
		Error *client.ErrorResponse `json:"error"`
	}
	if err := json.Unmarshal([]byte(lines[3]), &errLine); err != nil || errLine.Error == nil {
		t.Fatalf("last line is not an error line: %s", lines[3])
	}
	if errLine.Error.Kind != client.KindSlowConsumer {
		t.Fatalf("error kind = %q, want %q", errLine.Error.Kind, client.KindSlowConsumer)
	}
}

// TestShutdownEndsSubscriptions: a live subscription must not stall the
// drain — Shutdown ends it immediately with a "draining" error line.
func TestShutdownEndsSubscriptions(t *testing.T) {
	s, _, c := newTestServer(t)
	ctx := context.Background()
	mustCreate(t, c, "test", &client.DBOptions{Incremental: true})

	done := make(chan error, 1)
	go func() {
		_, err := c.Subscribe(ctx, "test", client.SubscribeRequest{}, func(client.DiffEvent) error { return nil })
		done <- err
	}()
	waitFor(t, func() bool { return s.testDB("test").Subscribers() == 1 })

	shutCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := s.Shutdown(shutCtx); err != nil {
		t.Fatalf("shutdown with a live subscription = %v", err)
	}
	select {
	case err := <-done:
		// Mid-stream errors arrive as NDJSON lines, not HTTP statuses:
		// only the kind identifies them.
		apiErr := asAPIError(t, err)
		if apiErr.Resp.Kind != client.KindDraining {
			t.Fatalf("subscription ended with %v, want kind draining", apiErr)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscription outlived shutdown")
	}
}
