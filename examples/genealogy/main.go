// Genealogy: the paper's Examples 2.2 and 3.2 — data functions for
// nesting (CHILDREN, DESC), a nullary function naming a type extension
// (JUNIOR), and the nested ANCESTOR association built by recursion over a
// data function.
package main

import (
	"fmt"
	"log"

	"logres"
)

const schema = `
domains
  NAME = string;
  BDATE = integer;
associations
  PARENT = (father: NAME, child: NAME, bdate: BDATE);
  PERSONREC = (name: NAME, age: integer);
  ANCESTOR = (anc: NAME, des: {NAME});
  JUNIORS = (name: NAME);
functions
  CHILDREN: NAME -> {(person: NAME, bdate: BDATE)};
  DESC: NAME -> {NAME};
  JUNIOR: -> {NAME};
`

func main() {
	db, err := logres.Open(schema)
	if err != nil {
		log.Fatal(err)
	}

	if _, err := db.Exec(`
mode ridv.
rules
  parent(father: "ugo", child: "sara", bdate: 1990).
  parent(father: "ugo", child: "luca", bdate: 1992).
  parent(father: "sara", child: "nina", bdate: 2015).
  personrec(name: "nina", age: 11).
  personrec(name: "sara", age: 36).
end.
`); err != nil {
		log.Fatal(err)
	}

	// Example 2.2: CHILDREN nests (person, bdate) pairs per father;
	// JUNIOR is a nullary function naming the juniors.
	// Example 3.2: DESC computes descendants recursively; ANCESTOR nests
	// the result into a set-valued component.
	if _, err := db.Exec(`
mode radi.
rules
  member(T, children(X)) <- parent(father: X, child: Y, bdate: Z),
                            T = (person: Y, bdate: Z).
  member(X, junior()) <- personrec(name: X, age: A), A <= 18.
  juniors(name: X) <- member(X, T), T = junior().

  member(X, desc(Y)) <- parent(father: Y, child: X).
  member(X, desc(Y)) <- parent(father: Y, child: Z), member(X, T), T = desc(Z).
  ancestor(anc: X, des: Y) <- parent(father: X), Y = desc(X).
end.
`); err != nil {
		log.Fatal(err)
	}

	ans, err := db.Query(`?- ancestor(anc: A, des: D).`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("descendant sets:")
	for _, row := range ans.Rows {
		fmt.Printf("  %s -> %s\n", row[0], row[1])
	}

	kids, err := db.Query(`?- juniors(name: X).`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("juniors:")
	for _, row := range kids.Rows {
		fmt.Println("  ", row[0])
	}

	ch, err := db.Query(`?- member(T, children("ugo")), T = (person: P, bdate: B).`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("children of ugo:")
	for _, row := range ch.Rows {
		fmt.Printf("  %s born %s\n", row[1], row[2])
	}
}
