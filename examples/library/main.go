// Library: the paper's §5 direction of supporting "the notions of methods
// and of encapsulation … within LOGRES" — named modules registered with
// the database act as encapsulated update/query procedures, invoked by
// name, persisted in snapshots, and parametric in their rule semantics.
package main

import (
	"bytes"
	"fmt"
	"log"

	"logres"
)

func main() {
	db, err := logres.Open(`
domains NAME = string;
associations
  ACCOUNT = (owner: NAME, balance: integer);
  AUDIT = (owner: NAME, balance: integer);
  RICH = (owner: NAME);
`)
	if err != nil {
		log.Fatal(err)
	}

	// Register three "methods": a loader, an auditing update, and a
	// report query. None of them run yet.
	for _, src := range []string{
		`
module seed_accounts.
mode ridv.
rules
  account(owner: "ann", balance: 120).
  account(owner: "bob", balance: 40).
  account(owner: "cho", balance: 500).
end.
`, `
module audit.
mode ridv.
rules
  audit(owner: O, balance: B) <- account(owner: O, balance: B).
  rich(owner: O) <- account(owner: O, balance: B), B >= 100.
end.
`, `
module report.
rules
goal
  ?- rich(owner: X).
end.
`,
	} {
		if err := db.Register(src); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("registered methods:", db.Modules())

	// Invoke them by name.
	if _, err := db.Call("seed_accounts"); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Call("audit"); err != nil {
		log.Fatal(err)
	}
	res, err := db.Call("report")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("rich owners:")
	for _, row := range res.Answer.Rows {
		fmt.Println("  ", row[0])
	}

	// The library is part of the persistent database state.
	var snap bytes.Buffer
	if err := db.Save(&snap); err != nil {
		log.Fatal(err)
	}
	restored, err := logres.Load(&snap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("after restore, methods:", restored.Modules())
	res2, err := restored.Call("report")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("report still answers: %d rows\n", len(res2.Answer.Rows))

	// Monitoring (§5 "design, debugging, and monitoring"): explain the
	// persistent program.
	if _, err := db.Exec(`
mode radi.
rules
  rich(owner: O) <- account(owner: O, balance: B), B >= 100.
end.
`); err != nil {
		log.Fatal(err)
	}
	out, err := db.Explain()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("explain:")
	fmt.Print(out)
}
