// Football: the paper's Example 2.1 — classes with set and sequence
// constructors, object sharing through oid components, and rule-derived
// standings.
//
// PLAYER and TEAM are classes (objects with oids); GAME is an association
// over team objects; the STANDING relation is derived by rules using
// arithmetic and comparisons.
package main

import (
	"fmt"
	"log"

	"logres"
)

const schema = `
domains
  NAME = string;
  ROLE = integer;
  DATE = string;
  SCORE = (home: integer, guest: integer);
classes
  PLAYER = (NAME, roles: {ROLE});
  TEAM = (team_name: NAME, base_players: <PLAYER>, substitutes: {PLAYER});
associations
  GAME = (h_team: TEAM, g_team: TEAM, DATE, SCORE);
  SIGNING = (team: NAME, player: NAME, role: ROLE);
  FIXTURE = (home: NAME, guest: NAME, date: DATE, hgoals: integer, ggoals: integer);
  WIN = (team: NAME, date: DATE);
`

func main() {
	db, err := logres.Open(schema)
	if err != nil {
		log.Fatal(err)
	}

	// Load the league: create player objects from signings, team objects
	// with base-player sequences (here: singleton sequences for brevity),
	// and game tuples referencing the team objects.
	if _, err := db.Exec(`
mode ridv.
rules
  signing(team: "milan", player: "rossi", role: 9).
  signing(team: "inter", player: "bianchi", role: 10).
  player(self: P, name: N, roles: {R}) <- signing(player: N, role: R).
  team(self: T, team_name: TN, base_players: <P>, substitutes: {})
      <- signing(team: TN, player: PN), player(self: P, name: PN).

  fixture(home: "milan", guest: "inter", date: "2026-05-01", hgoals: 2, ggoals: 1).
  fixture(home: "inter", guest: "milan", date: "2026-05-08", hgoals: 0, ggoals: 3).
  game(h_team: H, g_team: G, date: D, score: (home: HG, guest: GG))
      <- fixture(home: HN, guest: GN, date: D, hgoals: HG, ggoals: GG),
         team(self: H, team_name: HN), team(self: G, team_name: GN).
end.
`); err != nil {
		log.Fatal(err)
	}

	// Derive the winners with persistent rules (note the nested tuple
	// pattern on the SCORE component).
	if _, err := db.Exec(`
mode radi.
rules
  win(team: TN, date: D) <- game(h_team: H, date: D, score: (home: HG, guest: GG)),
                            HG > GG, team(self: H, team_name: TN).
  win(team: TN, date: D) <- game(g_team: G, date: D, score: (home: HG, guest: GG)),
                            GG > HG, team(self: G, team_name: TN).
end.
`); err != nil {
		log.Fatal(err)
	}

	ans, err := db.Query(`?- win(team: T, date: D).`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("wins:")
	for _, row := range ans.Rows {
		fmt.Printf("  %s on %s\n", row[0], row[1])
	}

	games, err := db.Count("game")
	if err != nil {
		log.Fatal(err)
	}
	players, err := db.Count("player")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d games, %d player objects\n", games, players)
}
