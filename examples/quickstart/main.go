// Quickstart: open a database from type equations, load facts through a
// data-variant module, add a derived-relation rule, and run a goal.
package main

import (
	"fmt"
	"log"

	"logres"
)

func main() {
	// 1. Type equations: one association. LOGRES schemas also support
	//    classes with oids, hierarchies and data functions — see the other
	//    examples.
	db, err := logres.Open(`
domains NAME = string;
associations
  PARENT = (par: NAME, chil: NAME);
  GRANDPARENT = (gp: NAME, gc: NAME);
`)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Insert facts with a RIDV (Rule Invariant, Data Variant) module.
	if _, err := db.Exec(`
mode ridv.
rules
  parent(par: "nonna", chil: "mamma").
  parent(par: "mamma", chil: "sara").
  parent(par: "mamma", chil: "luca").
end.
`); err != nil {
		log.Fatal(err)
	}

	// 3. Add a persistent rule with RADI (Rule Addition, Data Invariant).
	if _, err := db.Exec(`
mode radi.
rules
  grandparent(gp: X, gc: Z) <- parent(par: X, chil: Y), parent(par: Y, chil: Z).
end.
`); err != nil {
		log.Fatal(err)
	}

	// 4. Query.
	ans, err := db.Query(`?- grandparent(gp: "nonna", gc: X).`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("grandchildren of nonna:")
	for _, row := range ans.Rows {
		fmt.Println("  ", row[0])
	}
}
