// Powerset: the paper's Example 3.3 — computing the powerset of a
// relation with the Append and Union built-ins (result-last convention of
// Definition 6), demonstrating set-valued components and the inflationary
// fixpoint.
package main

import (
	"fmt"
	"log"

	"logres"
)

func main() {
	db, err := logres.Open(`
domains D = integer;
associations
  R = (d: D);
  POWER = (set: {D});
`)
	if err != nil {
		log.Fatal(err)
	}

	if _, err := db.Exec(`
mode ridv.
rules
  r(d: 1). r(d: 2). r(d: 3). r(d: 4).

  power(set: X) <- X = {}.
  power(set: X) <- r(d: Y), append({}, Y, X).
  power(set: X) <- power(set: Y), power(set: Z), union(Y, Z, X).
end.
`); err != nil {
		log.Fatal(err)
	}

	ans, err := db.Query(`?- power(set: S).`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("powerset of {1,2,3,4}: %d subsets\n", len(ans.Rows))
	for _, row := range ans.Rows {
		fmt.Println("  ", row[0])
	}
}
