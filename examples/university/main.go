// University: the paper's Example 3.1 and 3.4 — generalization
// hierarchies with shared oids, tuple/self variables, association joins,
// and the "interesting pair" pattern that routes invention through an
// association to control duplicates.
package main

import (
	"fmt"
	"log"

	"logres"
)

const schema = `
domains
  NAME = string;
  ADDRESS = string;
  COURSE = string;
classes
  PERSON = (name: NAME, address: ADDRESS);
  STUDENT = (PERSON, studschool: string);
  PROFESSOR = (PERSON, course: COURSE);
  STUDENT isa PERSON;
  PROFESSOR isa PERSON;
associations
  ADVISES = (professor: PROFESSOR, student: STUDENT);
  INTAKE = (name: NAME, address: ADDRESS, kind: string);
  EMP = (ename: NAME, works: string);
  DEPT = (dname: string, depmgr: NAME);
  PAIR = (employee: NAME, manager: NAME);
classes
  IP = PAIR;
`

func main() {
	db, err := logres.Open(schema)
	if err != nil {
		log.Fatal(err)
	}

	// Object creation: invention with unbound self variables. Every
	// student/professor object automatically propagates (with the SAME
	// oid) into PERSON through the generated isa constraints.
	if _, err := db.Exec(`
mode ridv.
rules
  intake(name: "smith", address: "milano", kind: "professor").
  intake(name: "smith", address: "milano", kind: "student").
  intake(name: "verdi", address: "roma", kind: "student").
  student(self: S, name: N, address: A, studschool: "polimi")
      <- intake(name: N, address: A, kind: "student").
  professor(self: P, name: N, address: A, course: "databases")
      <- intake(name: N, address: A, kind: "professor").
end.
`); err != nil {
		log.Fatal(err)
	}

	for _, class := range []string{"person", "student", "professor"} {
		n, err := db.Count(class)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s : %d objects\n", class, n)
	}

	// The paper's advising join through tuple variables: professors and
	// students with the same name.
	if _, err := db.Exec(`
mode radi.
rules
  advises(X1, Y1) <- professor(X1, name: X), student(Y1, name: X).
end.
`); err != nil {
		log.Fatal(err)
	}
	n, err := db.Count("advises")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("advises   : %d pairs\n", n)

	// Example 3.4 (interesting pair): the PAIR association deduplicates
	// before IP objects are invented, so multiple witnesses yield one
	// object.
	if _, err := db.Exec(`
mode ridv.
rules
  emp(ename: "smith", works: "d1").
  emp(ename: "smith", works: "d2").
  dept(dname: "d1", depmgr: "smith").
  dept(dname: "d2", depmgr: "smith").
  pair(employee: E, manager: M) <- emp(ename: E, works: D),
                                   dept(dname: D, depmgr: M),
                                   emp(ename: M).
  ip(self: X, C) <- pair(C).
end.
`); err != nil {
		log.Fatal(err)
	}
	pairs, err := db.Count("pair")
	if err != nil {
		log.Fatal(err)
	}
	ips, err := db.Count("ip")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pair      : %d tuples -> ip: %d object(s)\n", pairs, ips)

	ans, err := db.Query(`?- ip(employee: E, manager: M).`)
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range ans.Rows {
		fmt.Printf("interesting pair: employee %s, manager %s\n", row[0], row[1])
	}
}
