// Registrar: the §5 case study — "we will evaluate the expressiveness of
// LOGRES for building applications, by performing some case studies". A
// university registrar with:
//
//   - a generalization hierarchy (person ⊇ student, instructor) with
//     object sharing (sections reference instructor objects);
//   - data functions nesting each student's completed courses;
//   - registered modules ("methods") for enrolment, grading and reports;
//   - passive constraints (denials) guarding capacity and double marks;
//   - deletion heads implementing drop-outs;
//   - queries combining built-ins (count, member) with hierarchies.
package main

import (
	"fmt"
	"log"

	"logres"
)

const schema = `
domains
  NAME = string;
  CODE = string;
  GRADE = integer;
classes
  PERSON = (name: NAME);
  STUDENT = (PERSON, year: integer);
  INSTRUCTOR = (PERSON, field: string);
  STUDENT isa PERSON;
  INSTRUCTOR isa PERSON;
  SECTION = (code: CODE, teacher: INSTRUCTOR, capacity: integer);
associations
  ENROLLED = (student: STUDENT, section: SECTION);
  MARK = (student: STUDENT, code: CODE, grade: GRADE);
  INTAKE = (name: NAME, kind: string, detail: string);
  OFFERING = (code: CODE, teacher_name: NAME, capacity: integer);
  ENROLREQ = (name: NAME, code: CODE);
  DROPREQ = (name: NAME, code: CODE);
  TRANSCRIPT = (name: NAME, passed: {CODE});
  OVERLOADED = (code: CODE);
functions
  PASSED: NAME -> {CODE};
`

func must[T any](v T, err error) T {
	if err != nil {
		log.Fatal(err)
	}
	return v
}

func main() {
	db := must(logres.Open(schema))

	// Methods: each piece of registrar behaviour is an encapsulated,
	// registered module.
	methods := map[string]string{
		"load_people": `
module load_people.
mode ridv.
rules
  student(self: S, name: N, year: 1) <- intake(name: N, kind: "student").
  instructor(self: I, name: N, field: F) <- intake(name: N, kind: "instructor", detail: F).
end.
`,
		"open_sections": `
module open_sections.
mode ridv.
rules
  section(self: X, code: C, teacher: T, capacity: K)
      <- offering(code: C, teacher_name: TN, capacity: K),
         instructor(self: T, name: TN).
end.
`,
		"enrol": `
module enrol.
mode ridv.
rules
  enrolled(student: S, section: X)
      <- enrolreq(name: N, code: C),
         student(self: S, name: N), section(self: X, code: C).
end.
`,
		"drop": `
module drop.
mode ridv.
rules
  not enrolled(student: S, section: X)
      <- dropreq(name: N, code: C),
         student(self: S, name: N), section(self: X, code: C),
         enrolled(student: S, section: X).
end.
`,
		"grade_report": `
module grade_report.
mode radi.
rules
  member(C, passed(N)) <- mark(student: S, code: C, grade: G), G >= 18,
                          student(self: S, name: N).
  transcript(name: N, passed: P) <- student(name: N), P = passed(N).
end.
`,
		"capacity_watch": `
module capacity_watch.
mode radi.
rules
  overloaded(code: C) <- section(self: X, code: C, capacity: K),
                         enrolled(section: X), K < 1.
end.
`,
	}
	for _, name := range []string{"load_people", "open_sections", "enrol", "drop", "grade_report", "capacity_watch"} {
		if err := db.Register(methods[name]); err != nil {
			log.Fatal(err)
		}
	}

	// Load the term's data.
	must(db.Exec(`
mode ridv.
rules
  intake(name: "ann", kind: "student", detail: "").
  intake(name: "bob", kind: "student", detail: "").
  intake(name: "cho", kind: "student", detail: "").
  intake(name: "rossi", kind: "instructor", detail: "databases").
  offering(code: "db101", teacher_name: "rossi", capacity: 2).
  offering(code: "lp201", teacher_name: "rossi", capacity: 1).
  enrolreq(name: "ann", code: "db101").
  enrolreq(name: "bob", code: "db101").
  enrolreq(name: "cho", code: "lp201").
end.
`))
	must(db.Call("load_people"))
	must(db.Call("open_sections"))
	must(db.Call("enrol"))

	fmt.Println("persons:", count(db, "person"),
		"students:", count(db, "student"),
		"instructors:", count(db, "instructor"),
		"sections:", count(db, "section"),
		"enrolments:", count(db, "enrolled"))

	// Drop-out: bob leaves db101 (a deletion head).
	must(db.Exec(`
mode ridv.
rules
  dropreq(name: "bob", code: "db101").
end.
`))
	must(db.Call("drop"))
	fmt.Println("after drop, enrolments:", count(db, "enrolled"))

	// Marks arrive; the grade_report method derives nested transcripts.
	must(db.Exec(`
mode ridv.
rules
  mark(student: S, code: "db101", grade: 28) <- student(self: S, name: "ann").
  mark(student: S, code: "lp201", grade: 15) <- student(self: S, name: "cho").
end.
`))
	must(db.Call("grade_report"))
	must(db.Call("capacity_watch"))

	ans := must(db.Query(`?- transcript(name: N, passed: P).`))
	fmt.Println("transcripts:")
	for _, row := range ans.Rows {
		fmt.Printf("  %s passed %s\n", row[0], row[1])
	}

	// A passive constraint: no student may hold two marks for one course.
	// Adding it is accepted (the data satisfies it); the later violating
	// update is rejected wholesale.
	must(db.Exec(`
mode radi.
rules
  <- mark(student: S, code: C, grade: G1), mark(student: S, code: C, grade: G2), G1 != G2.
end.
`))
	_, err := db.Exec(`
mode ridv.
rules
  mark(student: S, code: "db101", grade: 20) <- student(self: S, name: "ann").
end.
`)
	fmt.Println("double-mark update rejected:", err != nil)

	// The consistency machinery still holds.
	if err := db.CheckConsistency(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("final state consistent; methods:", db.Modules())
}

func count(db *logres.Database, pred string) int {
	n, err := db.Count(pred)
	if err != nil {
		log.Fatal(err)
	}
	return n
}
