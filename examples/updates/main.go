// Updates: §4 of the paper — the six module application modes driving the
// evolution of a database state, including Example 4.1 (RIDV insertion
// with a derivation rule acting as a trigger) and Example 4.2 (updating
// tuples in place with a deletion head).
package main

import (
	"fmt"
	"log"

	"logres"
)

func main() {
	db, err := logres.Open(`
domains NAME = string;
associations
  ITALIAN = (name: NAME);
  ROMAN = (name: NAME);
  P = (d1: integer, d2: integer);
  MODP = (d1: integer, d2: integer);
  EVEN = (n: integer);
`)
	if err != nil {
		log.Fatal(err)
	}

	report := func(stage string) {
		italians := db.EDBCount("italian")
		romans := db.EDBCount("roman")
		fmt.Printf("%-28s E: italian=%d roman=%d, persistent rules=%d\n",
			stage, italians, romans, db.RuleCount())
	}

	// Example 4.1. E0 = {italian(sara)}, R0 = ∅.
	if _, err := db.Exec(`
mode ridv.
rules
  italian(name: "sara").
end.
`); err != nil {
		log.Fatal(err)
	}
	report("after seeding (RIDV)")

	// Apply the paper's RIDV module: two facts and a rule. The rule acts
	// as a trigger during the update, deriving italian(ugo), but is NOT
	// added to the persistent rules.
	if _, err := db.Exec(`
mode ridv.
rules
  italian(name: "luca").
  roman(name: "ugo").
  italian(name: X) <- roman(name: X).
end.
`); err != nil {
		log.Fatal(err)
	}
	report("after Example 4.1 (RIDV)")

	// RADI: make the derivation persistent instead; RDDI would remove it.
	if _, err := db.Exec(`
mode radi.
rules
  italian(name: X) <- roman(name: X).
end.
`); err != nil {
		log.Fatal(err)
	}
	report("after RADI")

	// A RIDI query sees both extensional and derived facts but changes
	// nothing.
	res, err := db.Exec(`
goal
  ?- italian(name: X).
end.
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-28s %d answers\n", "RIDI goal italian(X)", len(res.Answer.Rows))

	// Example 4.2: add 1 to the second field of every tuple with an even
	// first field, deleting the old tuples (deletion heads + guards).
	if _, err := db.Exec(`
mode ridv.
rules
  p(d1: 1, d2: 1). p(d1: 2, d2: 2). p(d1: 3, d2: 3). p(d1: 4, d2: 4).
  even(n: 2). even(n: 4).
end.
`); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Exec(`
mode ridv.
rules
  p(d1: X, d2: Z) <- p(d1: X, d2: Y), even(n: X), Z = Y + 1, not modp(d1: X, d2: Y).
  modp(d1: X, d2: Z) <- p(d1: X, d2: Y), even(n: X), Z = Y + 1, not modp(d1: X, d2: Y).
  not p(Y) <- p(Y), Y = (d1: X, d2: W), even(n: X), not modp(Y).
end.
`); err != nil {
		log.Fatal(err)
	}
	ans, err := db.Query(`?- p(d1: X, d2: Y).`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Example 4.2 result (expected (1,1) (2,3) (3,3) (4,5)):")
	for _, row := range ans.Rows {
		fmt.Printf("  p(%s, %s)\n", row[0], row[1])
	}

	// Materialize: E becomes the full instance and the rules are cleared
	// (the paper's trigger-style configuration, §4.2).
	if err := db.Materialize(); err != nil {
		log.Fatal(err)
	}
	report("after Materialize")
}
