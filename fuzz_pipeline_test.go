package logres

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// End-to-end robustness: random mutations of valid schema+module sources
// driven through the full pipeline (parse → validate → compile → evaluate
// with a small step bound) must never panic; errors of any kind are fine.

var fuzzSchemas = []string{
	`
domains NAME = string;
classes
  PERSON = (name: NAME);
  STUDENT = (PERSON, school: NAME);
  STUDENT isa PERSON;
associations
  PARENT = (par: NAME, chil: NAME);
functions
  DESC: NAME -> {NAME};
`,
	`
associations
  EDGE = (src: integer, dst: integer);
  TC = (src: integer, dst: integer);
`,
}

var fuzzModules = []string{
	`
mode ridv.
rules
  parent(par: "a", chil: "b").
  person(self: P, name: N) <- parent(par: N).
  member(X, desc(Y)) <- parent(par: Y, chil: X).
end.
`,
	`
mode radi.
rules
  tc(src: X, dst: Y) <- edge(src: X, dst: Y).
  tc(src: X, dst: Z) <- tc(src: X, dst: Y), edge(src: Y, dst: Z).
  not edge(src: X, dst: X) <- edge(src: X, dst: X).
  <- tc(src: 0, dst: 0).
goal
  ?- tc(src: X), X > 1.
end.
`,
	`
mode radv.
semantics noninflationary.
rules
  edge(src: 1, dst: 2).
  tc(T) <- tc(T).
end.
`,
}

func mutate(r *rand.Rand, src string) string {
	alphabet := []byte(`abcXYZ0159 .,;:(){}[]<>"=+-*/_%?-<-` + "\n")
	b := []byte(src)
	for i := 0; i < 1+r.Intn(8); i++ {
		if len(b) == 0 {
			break
		}
		pos := r.Intn(len(b))
		switch r.Intn(4) {
		case 0:
			b[pos] = alphabet[r.Intn(len(alphabet))]
		case 1:
			b = append(b[:pos], b[pos+1:]...)
		case 2:
			b = append(b[:pos], append([]byte{alphabet[r.Intn(len(alphabet))]}, b[pos:]...)...)
		case 3:
			b = b[:pos]
		}
	}
	return string(b)
}

// fuzzBudget bounds every fuzzed evaluation along all four axes, so a
// mutation that produces a legal divergent program (oid invention,
// counting recursion) fails bounded instead of hanging the fuzzer.
var fuzzBudget = Budget{MaxRounds: 200, MaxFacts: 20000, MaxOIDs: 1000, Timeout: 2 * time.Second}

func TestPipelineNeverPanics(t *testing.T) {
	f := func(seed int64) (ok bool) {
		defer func() {
			if rec := recover(); rec != nil {
				t.Logf("panic with seed %d: %v", seed, rec)
				ok = false
			}
		}()
		r := rand.New(rand.NewSource(seed))
		schemaSrc := fuzzSchemas[r.Intn(len(fuzzSchemas))]
		modSrc := fuzzModules[r.Intn(len(fuzzModules))]
		// Mutate one of the two (mutating both rarely gets past parsing).
		if r.Intn(2) == 0 {
			schemaSrc = mutate(r, schemaSrc)
		} else {
			modSrc = mutate(r, modSrc)
		}
		db, err := Open(schemaSrc, WithBudget(fuzzBudget))
		if err != nil {
			return true
		}
		if _, err := db.Exec(modSrc); err != nil {
			return true
		}
		_, _ = db.Query(`?- parent(par: X).`)
		_, _ = db.InstanceString()
		var sb strings.Builder
		_ = db.Save(&sb2{&sb})
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// FuzzPipeline is the native fuzz target over (schema, module) source
// pairs: the full pipeline runs under fuzzBudget and must neither panic
// nor mutate the database on a failed application. The corpus seeds
// include a legal divergent module, so the guardrails themselves are on
// the fuzzed path from generation zero.
func FuzzPipeline(f *testing.F) {
	for _, s := range fuzzSchemas {
		for _, m := range fuzzModules {
			f.Add(s, m)
		}
	}
	// A divergent counting module against the EDGE/TC schema: only the
	// budget stops it.
	f.Add(fuzzSchemas[1], `
mode ridv.
rules
  tc(src: 0, dst: 0).
  tc(src: X, dst: Y) <- tc(src: X, dst: W), Y = W + 1.
end.
`)
	// A recursive closure with negation the columnar compiler accepts, so
	// the vectorized differential leg below is exercised from generation
	// zero (mutations of it probe the row/columnar boundary).
	f.Add(fuzzSchemas[1], `
mode ridv.
rules
  edge(src: 1, dst: 2).
  edge(src: 2, dst: 3).
  edge(src: 3, dst: 1).
  tc(src: X, dst: Y) <- edge(src: X, dst: Y).
  tc(src: X, dst: Z) <- tc(src: X, dst: Y), edge(src: Y, dst: Z).
end.
`)
	// Deletion-heavy commit sequences (modules separated by "---") so the
	// incremental leg's DRed delete/rederive path is fuzzed from
	// generation zero: parallel support paths where removing one edge must
	// rederive the closure facts the other still supports, then removing
	// the second genuinely deletes them.
	f.Add(fuzzSchemas[1], `
mode ridv.
rules
  edge(src: 1, dst: 2).
  edge(src: 2, dst: 4).
  edge(src: 1, dst: 3).
  edge(src: 3, dst: 4).
end.
---
mode radv.
rules
  tc(src: X, dst: Y) <- edge(src: X, dst: Y).
  tc(src: X, dst: Z) <- tc(src: X, dst: Y), edge(src: Y, dst: Z).
end.
---
mode rddv.
rules
  edge(src: 1, dst: 2).
end.
---
mode rddv.
rules
  edge(src: 3, dst: 4).
  edge(src: 2, dst: 4).
end.
`)
	f.Add(fuzzSchemas[1], `
mode radv.
rules
  tc(src: X, dst: Y) <- edge(src: X, dst: Y).
  tc(src: X, dst: Z) <- tc(src: X, dst: Y), edge(src: Y, dst: Z).
end.
---
mode ridv.
rules
  edge(src: 1, dst: 2).
  edge(src: 2, dst: 3).
  edge(src: 3, dst: 1).
end.
---
mode rddv.
rules
  edge(src: 2, dst: 3).
end.
---
mode ridv.
rules
  edge(src: 2, dst: 3).
end.
`)
	f.Fuzz(func(t *testing.T, schemaSrc, modSrc string) {
		db, err := Open(schemaSrc, WithBudget(fuzzBudget))
		if err != nil {
			return
		}
		dbv, errv := Open(schemaSrc, WithBudget(fuzzBudget), WithVectorize(true))
		if errv != nil {
			t.Fatalf("vectorized open diverged: %v", errv)
		}
		dbi, erri := Open(schemaSrc, WithBudget(fuzzBudget), WithIncremental(true))
		if erri != nil {
			t.Fatalf("incremental open diverged: %v", erri)
		}
		// The source is a commit sequence: modules separated by "---"
		// lines apply in order (a plain module is a one-commit sequence),
		// so mutations explore incremental maintenance across deltas, not
		// just single applications.
		for _, modSrc := range strings.Split(modSrc, "\n---\n") {
			var before strings.Builder
			if err := db.Save(&sb2{&before}); err != nil {
				t.Fatalf("save: %v", err)
			}
			_, errRow := db.Exec(modSrc)
			_, errVec := dbv.Exec(modSrc)
			_, errInc := dbi.Exec(modSrc)
			if errRow != nil {
				// A failed application (parse error, rejection, or budget
				// abort) must leave the database bit-identical.
				var after strings.Builder
				if err := db.Save(&sb2{&after}); err != nil {
					t.Fatalf("save after abort: %v", err)
				}
				if before.String() != after.String() {
					t.Fatalf("failed application mutated the database")
				}
				return
			}
			// When the engines agree on acceptance, the persisted state
			// must be byte-identical. (Success can legitimately differ
			// only through the wall-clock budget axis, so a one-sided
			// abort is not comparable.)
			var row strings.Builder
			if err := db.Save(&sb2{&row}); err != nil {
				t.Fatalf("save row: %v", err)
			}
			if errVec == nil {
				var vec strings.Builder
				if err := dbv.Save(&sb2{&vec}); err != nil {
					t.Fatalf("save vectorized: %v", err)
				}
				if row.String() != vec.String() {
					t.Fatalf("row and vectorized evaluation persisted different databases")
				}
			}
			if errInc == nil {
				var inc strings.Builder
				if err := dbi.Save(&sb2{&inc}); err != nil {
					t.Fatalf("save incremental: %v", err)
				}
				if row.String() != inc.String() {
					t.Fatalf("incremental application persisted a different database")
				}
				// The maintained instance must render exactly what a
				// from-scratch evaluation of the same state renders.
				want, errW := db.InstanceString()
				got, errG := dbi.InstanceString()
				if errW == nil && errG == nil && want != got {
					t.Fatalf("incremental instance diverged from from-scratch replay")
				}
			} else {
				// Acceptance may only diverge through wall-clock budget
				// aborts; a rejected application still must not have
				// mutated the incremental database's committed state.
				var inc strings.Builder
				if err := dbi.Save(&sb2{&inc}); err != nil {
					t.Fatalf("save incremental after abort: %v", err)
				}
				if inc.String() != before.String() {
					t.Fatalf("failed incremental application mutated the database")
				}
				return
			}
		}
		_, _ = db.Query(`?- parent(par: X).`)
		_, _ = db.InstanceString()
	})
}

// sb2 adapts strings.Builder to io.Writer without importing io in tests.
type sb2 struct{ b *strings.Builder }

func (w *sb2) Write(p []byte) (int, error) { return w.b.Write(p) }

func TestPipelineUnmutatedModulesWork(t *testing.T) {
	db, err := Open(fuzzSchemas[1], WithMaxSteps(500))
	if err != nil {
		t.Fatal(err)
	}
	// Seed edges so the denial in module 1 doesn't trip.
	if _, err := db.Exec(`
mode ridv.
rules
  edge(src: 1, dst: 2).
end.
`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(fuzzModules[1]); err != nil {
		t.Fatal(err)
	}
	n, err := db.Count("tc")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("tc = %d", n)
	}
}
