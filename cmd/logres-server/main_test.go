package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"logres/client"
	"logres/internal/hooks"
)

const e2eSchema = `associations
  P = (x: integer);
  Q = (x: integer);
`

// startServer runs the daemon in-process on a loopback listener and
// returns a client plus the cancel that stands in for SIGTERM.
func startServer(t *testing.T, extraArgs ...string) (*client.Client, string, context.CancelFunc, func() error) {
	t.Helper()
	schemaPath := filepath.Join(t.TempDir(), "schema.lgr")
	if err := os.WriteFile(schemaPath, []byte(e2eSchema), 0o644); err != nil {
		t.Fatal(err)
	}
	args := append([]string{"-schema", schemaPath, "-db", "e2e", "-grace", "5s"}, extraArgs...)
	cfg, err := parseFlags(args)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- run(ctx, cfg, ln, os.Stderr) }()
	// wait blocks until run returned and caches the result, so the test
	// body and the cleanup can both call it.
	var exitOnce sync.Once
	var exitErr error
	wait := func() error {
		exitOnce.Do(func() { exitErr = <-runErr })
		return exitErr
	}
	t.Cleanup(func() {
		cancel()
		done := make(chan struct{})
		go func() { wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("server did not exit")
		}
	})
	base := "http://" + ln.Addr().String()
	return client.New(base), base, cancel, wait
}

// TestEndToEndDisjointAppliers: two clients applying modules over
// disjoint predicates through the live daemon all succeed, with zero
// optimistic conflicts recorded.
func TestEndToEndDisjointAppliers(t *testing.T) {
	c, base, _, _ := startServer(t)
	ctx := context.Background()

	const per = 5
	preds := []string{"p", "q"}
	var wg sync.WaitGroup
	errs := make(chan error, len(preds)*per)
	for g := range preds {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				module := fmt.Sprintf("mode ridv.\nrules %s(x: %d).\nend.\n", preds[g], i)
				if _, err := c.Exec(ctx, "e2e", module); err != nil {
					errs <- fmt.Errorf("%s #%d: %w", preds[g], i, err)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	for _, pred := range preds {
		ans, err := c.Query(ctx, "e2e", fmt.Sprintf("?- %s(x: X).", pred))
		if err != nil {
			t.Fatal(err)
		}
		if len(ans.Rows) != per {
			t.Fatalf("%s rows = %d, want %d", pred, len(ans.Rows), per)
		}
	}

	// The daemon's /metrics shows commits and no conflicts.
	body := scrapeMetrics(t, base)
	if n := metricValue(t, body, "logres_module_commits_total"); n < len(preds)*per {
		t.Fatalf("commits = %d, want >= %d\n%s", n, len(preds)*per, body)
	}
	if n := metricValue(t, body, "logres_module_conflicts_total"); n != 0 {
		t.Fatalf("conflicts = %d, want 0", n)
	}
}

func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// metricValue extracts one counter from the exposition text; a metric
// never incremented may be absent, which reads as zero.
func metricValue(t *testing.T, body, name string) int {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`)
	m := re.FindStringSubmatch(body)
	if m == nil {
		return 0
	}
	var n int
	if _, err := fmt.Sscanf(m[1], "%d", &n); err != nil {
		t.Fatal(err)
	}
	return n
}

// TestEndToEndConflictingPair: two applications writing the same
// predicate, held at their commit points until both have validated the
// same snapshot, produce exactly one 409 — and its body carries both
// footprints.
func TestEndToEndConflictingPair(t *testing.T) {
	c, _, _, _ := startServer(t)
	ctx := context.Background()

	release := make(chan struct{})
	var arrived atomic.Int32
	hooks.ConcurrentPreCommit = func(int) {
		if arrived.Add(1) == 2 {
			close(release)
		}
		<-release
	}
	defer func() { hooks.ConcurrentPreCommit = nil }()

	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			_, err := c.ExecRequest(ctx, "e2e", client.ExecRequest{
				Module:     fmt.Sprintf("mode ridv.\nrules p(x: %d).\nend.\n", i),
				MaxRetries: -1,
			})
			results <- err
		}(i)
	}
	var failures []*client.APIError
	for i := 0; i < 2; i++ {
		err := <-results
		if err == nil {
			continue
		}
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("err = %v (%T)", err, err)
		}
		failures = append(failures, apiErr)
	}
	if len(failures) != 1 {
		t.Fatalf("conflicting pair produced %d failures, want exactly 1: %v", len(failures), failures)
	}
	f := failures[0]
	if f.Status != http.StatusConflict || f.Resp.Kind != client.KindConflict {
		t.Fatalf("failure = %+v, want 409 conflict", f)
	}
	if f.Resp.Pred != "p" {
		t.Fatalf("conflict pred = %q, want p", f.Resp.Pred)
	}
	if f.Resp.Mine == nil || !contains(f.Resp.Mine.Writes, "p") {
		t.Fatalf("mine = %+v, want writes containing p", f.Resp.Mine)
	}
	if f.Resp.Theirs == nil || !contains(f.Resp.Theirs.Writes, "p") {
		t.Fatalf("theirs = %+v, want writes containing p", f.Resp.Theirs)
	}

	// The surviving application committed: exactly one p fact landed.
	ans, err := c.Query(ctx, "e2e", "?- p(x: X).")
	if err != nil {
		t.Fatal(err)
	}
	if len(ans.Rows) != 1 {
		t.Fatalf("p rows = %d, want 1", len(ans.Rows))
	}
}

func contains(s []string, want string) bool {
	for _, v := range s {
		if v == want {
			return true
		}
	}
	return false
}

// TestEndToEndSignalDrainsInFlightApply: the SIGTERM path (the
// NotifyContext cancel) drains — an application already past the gate
// completes with 200, new requests get 503, and run returns nil.
func TestEndToEndSignalDrainsInFlightApply(t *testing.T) {
	c, _, cancel, waitExit := startServer(t)
	ctx := context.Background()

	release := make(chan struct{})
	entered := make(chan struct{})
	var once sync.Once
	hooks.ConcurrentPreCommit = func(int) {
		once.Do(func() { close(entered) })
		<-release
	}
	defer func() { hooks.ConcurrentPreCommit = nil }()

	execDone := make(chan error, 1)
	go func() {
		_, err := c.Exec(ctx, "e2e", "mode ridv.\nrules p(x: 1).\nend.\n")
		execDone <- err
	}()
	<-entered

	cancel() // the signal

	// Draining: eventually new requests are refused.
	deadline := time.After(3 * time.Second)
	for {
		_, err := c.List(ctx)
		if err != nil {
			var apiErr *client.APIError
			if errors.As(err, &apiErr) {
				if apiErr.Status != http.StatusServiceUnavailable || apiErr.Resp.Kind != client.KindDraining {
					t.Fatalf("refusal = %+v, want 503 draining", apiErr)
				}
			} else if !strings.Contains(err.Error(), "connection refused") {
				// The HTTP listener may already be down; anything else is wrong.
				t.Fatalf("refusal = %v", err)
			}
			break
		}
		select {
		case <-deadline:
			t.Fatal("server never started draining")
		case <-time.After(time.Millisecond):
		}
	}

	select {
	case err := <-execDone:
		t.Fatalf("in-flight exec returned %v before release", err)
	case <-time.After(20 * time.Millisecond):
	}

	close(release)
	if err := <-execDone; err != nil {
		t.Fatalf("drained exec failed: %v", err)
	}
	exited := make(chan error, 1)
	go func() { exited <- waitExit() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("run = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not return after drain")
	}
}

// TestParseFlags covers the daemon's flag validation.
func TestParseFlags(t *testing.T) {
	if _, err := parseFlags([]string{"-schema", "a", "-load", "b"}); err == nil {
		t.Error("schema+load accepted")
	}
	if _, err := parseFlags([]string{"extra"}); err == nil {
		t.Error("positional args accepted")
	}
	cfg, err := parseFlags([]string{"-addr", ":0", "-grace", "1s"})
	if err != nil || cfg.addr != ":0" || cfg.grace != time.Second {
		t.Errorf("parseFlags = %+v, %v", cfg, err)
	}
}

// TestParseDurableFlags covers the durability flag surface.
func TestParseDurableFlags(t *testing.T) {
	cfg, err := parseFlags([]string{"-data-dir", "/tmp/x", "-fsync", "interval",
		"-fsync-interval", "50ms", "-compact-every", "64"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.dataDir != "/tmp/x" || cfg.fsync.String() != "interval" ||
		cfg.fsyncInterval != 50*time.Millisecond || cfg.compactEvery != 64 {
		t.Fatalf("cfg = %+v", cfg)
	}
	if _, err := parseFlags([]string{"-fsync", "sometimes"}); err == nil {
		t.Error("bad fsync policy accepted")
	}
	if _, err := parseFlags([]string{"-load", "a", "-data-dir", "b"}); err == nil {
		t.Error("load+data-dir accepted")
	}
	if cfg, err := parseFlags(nil); err != nil || cfg.fsync.String() != "always" {
		t.Errorf("default fsync = %v, %v", cfg.fsync, err)
	}
}

// TestEndToEndDurableRestart commits through a live daemon, stops it
// via the signal path, and restarts over the same data directory: the
// preloaded database must come back recovered with its commits.
func TestEndToEndDurableRestart(t *testing.T) {
	dataDir := filepath.Join(t.TempDir(), "data")
	ctx := context.Background()

	c, _, cancel, wait := startServer(t, "-data-dir", dataDir)
	if _, err := c.Exec(ctx, "e2e", "mode ridv.\nrules p(x: 1).\nend.\n"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Exec(ctx, "e2e", "mode ridv.\nrules p(x: 2).\nend.\n"); err != nil {
		t.Fatal(err)
	}
	info, err := c.Info(ctx, "e2e")
	if err != nil || info.Durability == nil {
		t.Fatalf("info = %+v, %v", info, err)
	}
	cancel()
	if err := wait(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		t.Fatalf("first run exited: %v", err)
	}

	c2, _, _, _ := startServer(t, "-data-dir", dataDir)
	info2, err := c2.Info(ctx, "e2e")
	if err != nil {
		t.Fatal(err)
	}
	if info2.Epoch != info.Epoch || info2.Recovery == nil {
		t.Fatalf("recovered info = %+v vs committed epoch %d", info2, info.Epoch)
	}
	ans, err := c2.Query(ctx, "e2e", "?- p(x: X).")
	if err != nil || len(ans.Rows) != 2 {
		t.Fatalf("recovered query = %+v, %v", ans, err)
	}
}
