// Command logres-server serves LOGRES databases over HTTP/JSON.
//
// Usage:
//
//	logres-server -addr :8440 [flags]
//
// The data plane lives under /v1/db (create/drop/list databases, apply
// modules through the optimistic concurrent path, stream query answers
// as NDJSON); the observability plane (/metrics, /debug/vars,
// /debug/pprof) is mounted on the same listener. Flags:
//
//	-addr a         listen address (default 127.0.0.1:8440)
//	-db name        preload a database under this name (default "default"
//	                when -schema or -load is given)
//	-schema file    open the preloaded database over this schema file
//	-load file      load the preloaded database from a snapshot instead
//	-workers n      evaluation workers for the preloaded database
//	-shards n       delta shards for the preloaded database
//	-max-retries n  conflict retry bound for the preloaded database
//	-grace d        shutdown grace period (default 30s): SIGINT/SIGTERM
//	                stops accepting work and drains in-flight
//	                applications; after d they are canceled through
//	                their contexts (the engine aborts with state
//	                untouched) and the server exits
//	-chunk n        rows per streamed query chunk (default 256)
//
// Shutdown: on the first signal the server stops accepting data-plane
// requests (503 kind=draining), waits up to -grace for in-flight
// applications, then force-cancels the stragglers. A second signal
// exits immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"logres"
	"logres/internal/server"
)

type config struct {
	addr       string
	dbName     string
	schemaPath string
	loadPath   string
	workers    int
	shards     int
	maxRetries int
	grace      time.Duration
	chunk      int
}

func parseFlags(args []string) (*config, error) {
	fs := flag.NewFlagSet("logres-server", flag.ContinueOnError)
	cfg := &config{}
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:8440", "listen address")
	fs.StringVar(&cfg.dbName, "db", "default", "name for the preloaded database")
	fs.StringVar(&cfg.schemaPath, "schema", "", "schema file for the preloaded database")
	fs.StringVar(&cfg.loadPath, "load", "", "snapshot file for the preloaded database")
	fs.IntVar(&cfg.workers, "workers", 0, "evaluation workers for the preloaded database")
	fs.IntVar(&cfg.shards, "shards", 0, "delta shards for the preloaded database")
	fs.IntVar(&cfg.maxRetries, "max-retries", 0, "conflict retry bound for the preloaded database")
	fs.DurationVar(&cfg.grace, "grace", 30*time.Second, "shutdown grace period")
	fs.IntVar(&cfg.chunk, "chunk", 0, "rows per streamed query chunk")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if cfg.schemaPath != "" && cfg.loadPath != "" {
		return nil, errors.New("-schema and -load are mutually exclusive")
	}
	return cfg, nil
}

// preload opens the database named by -schema/-load, sharing the
// server's metrics registry so its evaluation counters land on
// /metrics beside the HTTP ones.
func preload(cfg *config, srv *server.Server) error {
	if cfg.schemaPath == "" && cfg.loadPath == "" {
		return nil
	}
	opts := []logres.Option{logres.WithMetrics(srv.Metrics())}
	if cfg.workers != 0 {
		opts = append(opts, logres.WithWorkers(cfg.workers))
	}
	if cfg.shards != 0 {
		opts = append(opts, logres.WithShards(cfg.shards))
	}
	if cfg.maxRetries != 0 {
		opts = append(opts, logres.WithMaxRetries(cfg.maxRetries))
	}
	var (
		db  *logres.Database
		err error
	)
	if cfg.loadPath != "" {
		var f *os.File
		if f, err = os.Open(cfg.loadPath); err != nil {
			return err
		}
		defer f.Close()
		db, err = logres.Load(f, opts...)
	} else {
		var src []byte
		if src, err = os.ReadFile(cfg.schemaPath); err != nil {
			return err
		}
		db, err = logres.Open(string(src), opts...)
	}
	if err != nil {
		return err
	}
	return srv.Add(cfg.dbName, db)
}

// run serves until ctx is canceled (the first signal), then drains:
// Server.Shutdown bounds the in-flight applications by cfg.grace, and
// the http.Server shutdown closes the listener and idle connections.
func run(ctx context.Context, cfg *config, ln net.Listener, stderr *os.File) error {
	srv := server.New(server.Options{QueryChunkSize: cfg.chunk})
	if err := preload(cfg, srv); err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(stderr, "logres-server: listening on %s\n", ln.Addr())

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(stderr, "logres-server: draining (grace %s)\n", cfg.grace)
	grace, cancel := context.WithTimeout(context.Background(), cfg.grace)
	defer cancel()
	drainErr := srv.Shutdown(grace)
	if err := hs.Shutdown(grace); err != nil && drainErr == nil {
		drainErr = err
	}
	if drainErr != nil {
		fmt.Fprintf(stderr, "logres-server: forced shutdown: %v\n", drainErr)
		return drainErr
	}
	fmt.Fprintln(stderr, "logres-server: drained cleanly")
	return nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "logres-server:", err)
		os.Exit(2)
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "logres-server:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, ln, os.Stderr); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "logres-server:", err)
		os.Exit(1)
	}
}
