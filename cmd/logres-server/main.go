// Command logres-server serves LOGRES databases over HTTP/JSON.
//
// Usage:
//
//	logres-server -addr :8440 [flags]
//
// The data plane lives under /v1/db (create/drop/list databases, apply
// modules through the optimistic concurrent path, stream query answers
// as NDJSON); the observability plane (/metrics, /debug/vars,
// /debug/pprof) is mounted on the same listener. Flags:
//
//	-addr a            listen address (default 127.0.0.1:8440)
//	-db name           preload a database under this name (default
//	                   "default" when -schema or -load is given)
//	-schema file       open the preloaded database over this schema file
//	-load file         load the preloaded database from a snapshot
//	                   instead (in-memory servers only)
//	-workers n         evaluation workers for the preloaded database
//	-shards n          delta shards for the preloaded database
//	-max-retries n     conflict retry bound for the preloaded database
//	-grace d           shutdown grace period (default 30s): SIGINT/SIGTERM
//	                   stops accepting work and drains in-flight
//	                   applications; after d they are canceled through
//	                   their contexts (the engine aborts with state
//	                   untouched) and the server exits
//	-chunk n           rows per streamed query chunk (default 256)
//	-data-dir d        durable mode: every database lives in its own
//	                   subdirectory of d (snapshot + write-ahead log);
//	                   databases found under d are recovered at startup
//	-fsync p           WAL sync policy: always | interval | off
//	                   (default always)
//	-fsync-interval d  coalescing window under -fsync interval
//	                   (default 100ms)
//	-compact-every n   checkpoint + truncate the WAL every n records
//	                   (default 4096, negative disables)
//	-slow-query-threshold d  log any data-plane request slower than d as
//	                   one JSONL line with its request id and full
//	                   profile (0 disables)
//	-slow-query-log f  destination for the slow-query JSONL records
//	                   (default stderr; "-" = stderr explicitly)
//
// Probes: GET /healthz answers 200 while the process serves (including
// during a drain); GET /readyz answers 200 only when the server accepts
// data-plane traffic — 503 while draining and until -data-dir recovery
// finished. GET /debug/requests lists the in-flight requests with their
// request id, route, database, phase, elapsed time, and budget use.
//
// Shutdown: on the first signal the server stops accepting data-plane
// requests (503 kind=draining with a Retry-After hint), waits up to
// -grace for in-flight applications, then force-cancels the
// stragglers; once drained every durable database's WAL is flushed. A
// second signal exits immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"logres"
	"logres/internal/server"
)

type config struct {
	addr          string
	dbName        string
	schemaPath    string
	loadPath      string
	workers       int
	shards        int
	maxRetries    int
	grace         time.Duration
	chunk         int
	dataDir       string
	fsync         logres.FsyncPolicy
	fsyncInterval time.Duration
	compactEvery  int
	slowThreshold time.Duration
	slowLogPath   string
}

func parseFlags(args []string) (*config, error) {
	fs := flag.NewFlagSet("logres-server", flag.ContinueOnError)
	cfg := &config{}
	var fsyncName string
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:8440", "listen address")
	fs.StringVar(&cfg.dbName, "db", "default", "name for the preloaded database")
	fs.StringVar(&cfg.schemaPath, "schema", "", "schema file for the preloaded database")
	fs.StringVar(&cfg.loadPath, "load", "", "snapshot file for the preloaded database")
	fs.IntVar(&cfg.workers, "workers", 0, "evaluation workers for the preloaded database")
	fs.IntVar(&cfg.shards, "shards", 0, "delta shards for the preloaded database")
	fs.IntVar(&cfg.maxRetries, "max-retries", 0, "conflict retry bound for the preloaded database")
	fs.DurationVar(&cfg.grace, "grace", 30*time.Second, "shutdown grace period")
	fs.IntVar(&cfg.chunk, "chunk", 0, "rows per streamed query chunk")
	fs.StringVar(&cfg.dataDir, "data-dir", "", "data directory for durable databases (empty = in-memory)")
	fs.StringVar(&fsyncName, "fsync", "always", "WAL sync policy: always | interval | off")
	fs.DurationVar(&cfg.fsyncInterval, "fsync-interval", 0, "coalescing window under -fsync interval (default 100ms)")
	fs.IntVar(&cfg.compactEvery, "compact-every", 0, "WAL records between compactions (default 4096, negative disables)")
	fs.DurationVar(&cfg.slowThreshold, "slow-query-threshold", 0, "log data-plane requests slower than this with their profile (0 disables)")
	fs.StringVar(&cfg.slowLogPath, "slow-query-log", "", "slow-query JSONL destination (default stderr)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if cfg.schemaPath != "" && cfg.loadPath != "" {
		return nil, errors.New("-schema and -load are mutually exclusive")
	}
	if cfg.loadPath != "" && cfg.dataDir != "" {
		return nil, errors.New("-load and -data-dir are mutually exclusive (recover from the data directory instead)")
	}
	var err error
	if cfg.fsync, err = logres.ParseFsyncPolicy(fsyncName); err != nil {
		return nil, err
	}
	return cfg, nil
}

// preload opens the database named by -schema/-load, sharing the
// server's metrics registry so its evaluation counters land on
// /metrics beside the HTTP ones. On a durable server the preload goes
// through srv.Create (so it persists like API-created databases) and
// is skipped when the name was already recovered from the data
// directory — the persisted state wins over the schema file.
func preload(cfg *config, srv *server.Server, stderr *os.File) error {
	if cfg.schemaPath == "" && cfg.loadPath == "" {
		return nil
	}
	opts := []logres.Option{logres.WithMetrics(srv.Metrics())}
	if cfg.workers != 0 {
		opts = append(opts, logres.WithWorkers(cfg.workers))
	}
	if cfg.shards != 0 {
		opts = append(opts, logres.WithShards(cfg.shards))
	}
	if cfg.maxRetries != 0 {
		opts = append(opts, logres.WithMaxRetries(cfg.maxRetries))
	}
	if cfg.loadPath != "" {
		f, err := os.Open(cfg.loadPath)
		if err != nil {
			return err
		}
		defer f.Close()
		db, err := logres.Load(f, opts...)
		if err != nil {
			return err
		}
		return srv.Add(cfg.dbName, db)
	}
	src, err := os.ReadFile(cfg.schemaPath)
	if err != nil {
		return err
	}
	if _, err := srv.Create(cfg.dbName, string(src), opts...); err != nil {
		if errors.Is(err, server.ErrExists) {
			fmt.Fprintf(stderr, "logres-server: database %q recovered from %s; -schema ignored\n",
				cfg.dbName, cfg.dataDir)
			return nil
		}
		return err
	}
	return nil
}

// run serves until ctx is canceled (the first signal), then drains:
// Server.Shutdown bounds the in-flight applications by cfg.grace, and
// the http.Server shutdown closes the listener and idle connections.
func run(ctx context.Context, cfg *config, ln net.Listener, stderr *os.File) error {
	opts := server.Options{
		QueryChunkSize: cfg.chunk,
		DataDir:        cfg.dataDir,
		Fsync:          cfg.fsync,
		FsyncInterval:  cfg.fsyncInterval,
		CompactEvery:   cfg.compactEvery,
	}
	if cfg.slowThreshold > 0 {
		opts.SlowQueryThreshold = cfg.slowThreshold
		opts.SlowQueryLog = stderr
		if cfg.slowLogPath != "" && cfg.slowLogPath != "-" {
			f, err := os.OpenFile(cfg.slowLogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return err
			}
			defer f.Close()
			opts.SlowQueryLog = f
		}
	}
	srv := server.New(opts)
	recovered, err := srv.OpenDataDir()
	if err != nil {
		return err
	}
	if len(recovered) > 0 {
		fmt.Fprintf(stderr, "logres-server: recovered %d database(s) from %s: %v\n",
			len(recovered), cfg.dataDir, recovered)
	}
	if err := preload(cfg, srv, stderr); err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(stderr, "logres-server: listening on %s\n", ln.Addr())

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintf(stderr, "logres-server: draining (grace %s)\n", cfg.grace)
	grace, cancel := context.WithTimeout(context.Background(), cfg.grace)
	defer cancel()
	drainErr := srv.Shutdown(grace)
	if err := hs.Shutdown(grace); err != nil && drainErr == nil {
		drainErr = err
	}
	if drainErr != nil {
		fmt.Fprintf(stderr, "logres-server: forced shutdown: %v\n", drainErr)
		return drainErr
	}
	fmt.Fprintln(stderr, "logres-server: drained cleanly")
	return nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "logres-server:", err)
		os.Exit(2)
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "logres-server:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, ln, os.Stderr); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "logres-server:", err)
		os.Exit(1)
	}
}
