// Command logres executes LOGRES schema and module files against a
// database state.
//
// Usage:
//
//	logres -schema schema.lgr [flags] module1.lgr module2.lgr …
//
// The schema file contains only type equations (domains / classes /
// associations / functions). Each module file is applied in order with
// its declared mode (RIDI when undeclared). Flags:
//
//	-schema file    schema file (required unless -load is given)
//	-load file      load a snapshot instead of opening a schema
//	-save file      save a snapshot after applying all modules
//	-q goal         evaluate a goal (e.g. '?- person(name: X).') at the end
//	-dump           print the final instance
//	-max-steps n    fixpoint step bound
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"logres"
)

func main() {
	var (
		schemaPath  = flag.String("schema", "", "schema file (type equations only)")
		loadPath    = flag.String("load", "", "load a snapshot instead of opening a schema")
		savePath    = flag.String("save", "", "save a snapshot after applying all modules")
		goal        = flag.String("q", "", "goal to evaluate at the end")
		dump        = flag.Bool("dump", false, "print the final instance")
		maxSteps    = flag.Int("max-steps", 0, "fixpoint step bound (0 = default)")
		interactive = flag.Bool("i", false, "start an interactive REPL after applying the modules")
	)
	flag.Parse()
	if err := run(*schemaPath, *loadPath, *savePath, *goal, *dump, *interactive, *maxSteps, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "logres:", err)
		os.Exit(1)
	}
}

func run(schemaPath, loadPath, savePath, goal string, dump, interactive bool, maxSteps int, moduleFiles []string) error {
	var opts []logres.Option
	if maxSteps > 0 {
		opts = append(opts, logres.WithMaxSteps(maxSteps))
	}

	var db *logres.Database
	switch {
	case loadPath != "":
		f, err := os.Open(loadPath)
		if err != nil {
			return err
		}
		defer f.Close()
		loaded, err := logres.Load(f, opts...)
		if err != nil {
			return err
		}
		db = loaded
	case schemaPath != "":
		src, err := os.ReadFile(schemaPath)
		if err != nil {
			return err
		}
		opened, err := logres.Open(string(src), opts...)
		if err != nil {
			return fmt.Errorf("%s: %w", schemaPath, err)
		}
		db = opened
	default:
		return fmt.Errorf("one of -schema or -load is required")
	}

	for _, path := range moduleFiles {
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		res, err := db.Exec(string(src))
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Printf("applied %s (%s)\n", path, res.Mode)
		if res.Answer != nil {
			printAnswer(res.Answer)
		}
	}

	if goal != "" {
		ans, err := db.Query(goal)
		if err != nil {
			return err
		}
		printAnswer(ans)
	}
	if dump {
		out, err := db.InstanceString()
		if err != nil {
			return err
		}
		fmt.Print(out)
	}
	if interactive {
		if err := repl(db, os.Stdin, os.Stdout); err != nil {
			return err
		}
	}
	if savePath != "" {
		f, err := os.Create(savePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := db.Save(f); err != nil {
			return err
		}
		fmt.Printf("saved snapshot to %s\n", savePath)
	}
	return nil
}

func printAnswer(ans *logres.Answer) {
	if len(ans.Vars) == 0 {
		if len(ans.Rows) > 0 {
			fmt.Println("yes")
		} else {
			fmt.Println("no")
		}
		return
	}
	fmt.Println(strings.Join(ans.Vars, "\t"))
	for _, row := range ans.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
	fmt.Printf("(%d answers)\n", len(ans.Rows))
}
