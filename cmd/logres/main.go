// Command logres executes LOGRES schema and module files against a
// database state.
//
// Usage:
//
//	logres -schema schema.lgr [flags] module1.lgr module2.lgr …
//
// The schema file contains only type equations (domains / classes /
// associations / functions). Each module file is applied in order with
// its declared mode (RIDI when undeclared). Flags:
//
//	-schema file    schema file (required unless -load is given)
//	-load file      load a snapshot instead of opening a schema
//	-save file      save a snapshot after applying all modules
//	-q goal         evaluate a goal (e.g. '?- person(name: X).') at the end
//	-dump           print the final instance
//	-max-steps n    fixpoint round bound
//	-max-facts n    bound on facts derived per evaluation
//	-max-oids n     bound on oids invented per evaluation
//	-deadline d     wall-clock bound per evaluation (e.g. 30s)
//	-trace dest     write an evaluation event trace; dest is a JSONL file
//	                path, "-" for JSONL on stderr, or "text:PATH" /
//	                "text:-" for the human-readable rendering
//	-flight n       keep the last n trace events in a flight recorder and
//	                dump them to stderr when an evaluation aborts
//	-metrics-addr a serve /metrics (Prometheus text), /debug/vars
//	                (expvar), and /debug/pprof on addr (e.g. :6060)
//	-concurrent     apply modules optimistically (snapshot + footprint
//	                validation + retry) instead of under the write lock
//	-max-retries n  conflict retry bound for -concurrent (0 = default,
//	                negative = fail on the first conflict)
//	-i              start an interactive REPL after applying the modules
//
// Ctrl-C cancels the in-flight evaluation: non-interactive runs exit
// non-zero with the database file untouched; the REPL returns to its
// prompt with the in-memory database unchanged.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"logres"
)

// config collects the command-line configuration of one run.
type config struct {
	schemaPath  string
	loadPath    string
	savePath    string
	goal        string
	dump        bool
	interactive bool
	concurrent  bool
	maxRetries  int
	budget      logres.Budget
	trace       string
	flight      int
	metricsAddr string
	moduleFiles []string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.schemaPath, "schema", "", "schema file (type equations only)")
	flag.StringVar(&cfg.loadPath, "load", "", "load a snapshot instead of opening a schema")
	flag.StringVar(&cfg.savePath, "save", "", "save a snapshot after applying all modules")
	flag.StringVar(&cfg.goal, "q", "", "goal to evaluate at the end")
	flag.BoolVar(&cfg.dump, "dump", false, "print the final instance")
	flag.IntVar(&cfg.budget.MaxRounds, "max-steps", 0, "fixpoint round bound (0 = default)")
	flag.IntVar(&cfg.budget.MaxFacts, "max-facts", 0, "bound on facts derived per evaluation (0 = unlimited)")
	flag.IntVar(&cfg.budget.MaxOIDs, "max-oids", 0, "bound on oids invented per evaluation (0 = unlimited)")
	flag.DurationVar(&cfg.budget.Timeout, "deadline", 0, "wall-clock bound per evaluation (0 = unlimited)")
	flag.StringVar(&cfg.trace, "trace", "", `trace destination: JSONL file, "-" (stderr), or "text:PATH"`)
	flag.IntVar(&cfg.flight, "flight", 0, "flight-recorder size; dumps the last n events to stderr on abort (0 = off)")
	flag.StringVar(&cfg.metricsAddr, "metrics-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address")
	flag.BoolVar(&cfg.concurrent, "concurrent", false, "apply modules optimistically (snapshot + footprint validation + retry)")
	flag.IntVar(&cfg.maxRetries, "max-retries", 0, "conflict retry bound for -concurrent (0 = default, negative = no retries)")
	flag.BoolVar(&cfg.interactive, "i", false, "start an interactive REPL after applying the modules")
	flag.Parse()
	cfg.moduleFiles = flag.Args()

	// Ctrl-C (or SIGTERM) cancels the in-flight evaluation; module
	// application is all-or-nothing, so the database is never left
	// half-updated. The REPL installs its own per-evaluation handler so an
	// interrupt returns to the prompt instead of exiting.
	ctx := context.Background()
	if !cfg.interactive {
		var stop context.CancelFunc
		ctx, stop = signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
		defer stop()
	}
	if err := run(ctx, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "logres:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, cfg config) error {
	var opts []logres.Option
	if cfg.budget != (logres.Budget{}) {
		opts = append(opts, logres.WithBudget(cfg.budget))
	}
	if cfg.maxRetries != 0 {
		opts = append(opts, logres.WithMaxRetries(cfg.maxRetries))
	}

	tracer, closeTrace, err := buildTracer(cfg)
	if err != nil {
		return err
	}
	if closeTrace != nil {
		defer closeTrace()
	}
	if tracer != nil {
		opts = append(opts, logres.WithTracer(tracer))
	}

	var metrics *logres.Metrics
	if cfg.metricsAddr != "" {
		metrics = logres.NewMetrics()
		metrics.PublishExpvar("logres")
		opts = append(opts, logres.WithMetrics(metrics))
		go func() {
			srv := &http.Server{Addr: cfg.metricsAddr, Handler: logres.MetricsHandler(metrics)}
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintln(os.Stderr, "logres: metrics server:", err)
			}
		}()
	}

	var db *logres.Database
	switch {
	case cfg.loadPath != "":
		f, err := os.Open(cfg.loadPath)
		if err != nil {
			return err
		}
		defer f.Close()
		loaded, err := logres.Load(f, opts...)
		if err != nil {
			return err
		}
		db = loaded
	case cfg.schemaPath != "":
		src, err := os.ReadFile(cfg.schemaPath)
		if err != nil {
			return err
		}
		opened, err := logres.Open(string(src), opts...)
		if err != nil {
			return fmt.Errorf("%s: %w", cfg.schemaPath, err)
		}
		db = opened
	default:
		return fmt.Errorf("one of -schema or -load is required")
	}

	for _, path := range cfg.moduleFiles {
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		exec := db.ExecContext
		if cfg.concurrent {
			exec = db.ExecConcurrentContext
		}
		res, err := exec(ctx, string(src))
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		fmt.Printf("applied %s (%s)\n", path, res.Mode)
		if res.Answer != nil {
			printAnswer(res.Answer)
		}
	}

	if cfg.goal != "" {
		ans, err := db.QueryContext(ctx, cfg.goal)
		if err != nil {
			return err
		}
		printAnswer(ans)
	}
	if cfg.dump {
		out, err := db.InstanceString()
		if err != nil {
			return err
		}
		fmt.Print(out)
	}
	if cfg.interactive {
		if err := repl(db, os.Stdin, os.Stdout); err != nil {
			return err
		}
	}
	if cfg.savePath != "" {
		f, err := os.Create(cfg.savePath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := db.Save(f); err != nil {
			return err
		}
		fmt.Printf("saved snapshot to %s\n", cfg.savePath)
	}
	return nil
}

// buildTracer assembles the tracer the -trace and -flight flags ask
// for: a JSONL or text sink on a file or stderr, fanned together with a
// flight recorder that dumps to stderr on abort. The returned cleanup
// closes any opened file.
func buildTracer(cfg config) (logres.Tracer, func(), error) {
	var tracers []logres.Tracer
	var cleanup func()
	if cfg.trace != "" {
		dest := cfg.trace
		text := false
		if strings.HasPrefix(dest, "text:") {
			text, dest = true, strings.TrimPrefix(dest, "text:")
		}
		var w *os.File
		if dest == "-" {
			w = os.Stderr
		} else {
			f, err := os.Create(dest)
			if err != nil {
				return nil, nil, fmt.Errorf("-trace: %w", err)
			}
			w, cleanup = f, func() { f.Close() }
		}
		if text {
			tracers = append(tracers, logres.NewTextTracer(w))
		} else {
			tracers = append(tracers, logres.NewJSONLTracer(w))
		}
	}
	if cfg.flight > 0 {
		fr := logres.NewFlightRecorder(cfg.flight)
		fr.SetDumpOnAbort(os.Stderr)
		tracers = append(tracers, fr)
	}
	return logres.MultiTracer(tracers...), cleanup, nil
}

func printAnswer(ans *logres.Answer) {
	if len(ans.Vars) == 0 {
		if len(ans.Rows) > 0 {
			fmt.Println("yes")
		} else {
			fmt.Println("no")
		}
		return
	}
	fmt.Println(strings.Join(ans.Vars, "\t"))
	for _, row := range ans.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
	fmt.Printf("(%d answers)\n", len(ans.Rows))
}
