package main

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"

	"logres"
)

// repl runs the interactive loop. Input forms:
//
//	?- goal .                  evaluate a goal immediately
//	mode/rules/… … end.        a module, applied when `end.` arrives
//	.dump                      print the current instance
//	.schema                    print the schema
//	.explain                   print program structure and statistics
//	.modules                   list registered modules
//	.call NAME                 invoke a registered module
//	.register <module…end.>    register the next module instead of applying
//	.save FILE / .load FILE    snapshot I/O
//	.trace on|off              toggle a human-readable evaluation trace
//	.concurrent on|off         apply modules optimistically (snapshot +
//	                           footprint validation + conflict retry)
//	.metrics                   print the metrics registry (Prometheus text)
//	.help / .quit
func repl(db *logres.Database, in io.Reader, out io.Writer) error {
	// Ctrl-C during an evaluation cancels it and returns to the prompt;
	// module application is all-or-nothing, so the database is unchanged.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	defer signal.Stop(sig)

	scanner := bufio.NewScanner(in)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	registering := false
	concurrent := false
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Fprint(out, "logres> ")
		} else {
			fmt.Fprint(out, "   ...> ")
		}
	}
	prompt()
	for scanner.Scan() {
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case buf.Len() == 0 && strings.HasPrefix(trimmed, "."):
			if done := replCommand(db, trimmed, out, &registering, &concurrent, sig); done {
				return nil
			}
			prompt()
			continue
		case buf.Len() == 0 && trimmed == "":
			prompt()
			continue
		case buf.Len() == 0 && strings.HasPrefix(trimmed, "?-"):
			var ans *logres.Answer
			err := withInterrupt(sig, func(ctx context.Context) error {
				var err error
				ans, err = db.QueryContext(ctx, trimmed)
				return err
			})
			if err != nil {
				printEvalError(out, err)
			} else {
				writeAnswer(out, ans)
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if trimmed == "end." {
			src := buf.String()
			buf.Reset()
			if registering {
				registering = false
				if err := db.Register(src); err != nil {
					fmt.Fprintln(out, "error:", err)
				} else {
					fmt.Fprintln(out, "registered")
				}
			} else {
				var res *logres.Result
				err := withInterrupt(sig, func(ctx context.Context) error {
					var err error
					if concurrent {
						res, err = db.ExecConcurrentContext(ctx, src)
					} else {
						res, err = db.ExecContext(ctx, src)
					}
					return err
				})
				if err != nil {
					printEvalError(out, err)
				} else {
					fmt.Fprintf(out, "applied (%s)\n", res.Mode)
					if res.Answer != nil {
						writeAnswer(out, res.Answer)
					}
				}
			}
		}
		prompt()
	}
	return scanner.Err()
}

// withInterrupt runs one evaluation under a context canceled by the next
// interrupt signal; the watcher goroutine is released when fn returns.
func withInterrupt(sig <-chan os.Signal, fn func(ctx context.Context) error) error {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-sig:
			cancel()
		case <-done:
		}
	}()
	return fn(ctx)
}

// printEvalError distinguishes an interrupt (the evaluation was canceled,
// the database is untouched) from an ordinary evaluation error.
func printEvalError(out io.Writer, err error) {
	var ce *logres.CanceledError
	if errors.As(err, &ce) {
		fmt.Fprintln(out, "interrupted (database unchanged):", err)
		return
	}
	var conflict *logres.ConflictError
	if errors.As(err, &conflict) {
		fmt.Fprintln(out, "conflict (database unchanged):", err)
		return
	}
	fmt.Fprintln(out, "error:", err)
}

// replCommand executes a dot command; it reports whether the REPL should
// exit.
func replCommand(db *logres.Database, cmd string, out io.Writer, registering, concurrent *bool, sig <-chan os.Signal) bool {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case ".quit", ".exit":
		return true
	case ".help":
		fmt.Fprintln(out, "commands: ?- goal.   <module…end.>   .dump .schema .explain .modules")
		fmt.Fprintln(out, "          .call NAME .register .save FILE .load FILE")
		fmt.Fprintln(out, "          .trace on|off .concurrent on|off .metrics .quit")
	case ".concurrent":
		switch {
		case len(fields) == 2 && fields[1] == "on":
			*concurrent = true
			fmt.Fprintln(out, "concurrent application on (optimistic commit with conflict retry)")
		case len(fields) == 2 && fields[1] == "off":
			*concurrent = false
			fmt.Fprintln(out, "concurrent application off")
		default:
			fmt.Fprintln(out, "usage: .concurrent on|off")
		}
	case ".trace":
		switch {
		case len(fields) == 2 && fields[1] == "on":
			db.SetTracer(logres.NewTextTracer(out))
			fmt.Fprintln(out, "tracing on")
		case len(fields) == 2 && fields[1] == "off":
			db.SetTracer(nil)
			fmt.Fprintln(out, "tracing off")
		default:
			fmt.Fprintln(out, "usage: .trace on|off")
		}
	case ".metrics":
		if _, err := db.Metrics().WriteTo(out); err != nil {
			fmt.Fprintln(out, "error:", err)
		}
	case ".dump":
		s, err := db.InstanceString()
		if err != nil {
			fmt.Fprintln(out, "error:", err)
		} else {
			fmt.Fprint(out, s)
		}
	case ".schema":
		fmt.Fprint(out, db.Schema())
	case ".explain":
		s, err := db.Explain()
		if err != nil {
			fmt.Fprintln(out, "error:", err)
		} else {
			fmt.Fprint(out, s)
		}
	case ".modules":
		for _, n := range db.Modules() {
			fmt.Fprintln(out, " ", n)
		}
	case ".register":
		*registering = true
		fmt.Fprintln(out, "enter a named module terminated by end.")
	case ".call":
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: .call NAME")
			break
		}
		var res *logres.Result
		err := withInterrupt(sig, func(ctx context.Context) error {
			var err error
			res, err = db.CallContext(ctx, fields[1])
			return err
		})
		if err != nil {
			printEvalError(out, err)
			break
		}
		fmt.Fprintf(out, "applied %s (%s)\n", fields[1], res.Mode)
		if res.Answer != nil {
			writeAnswer(out, res.Answer)
		}
	case ".save":
		if len(fields) != 2 {
			fmt.Fprintln(out, "usage: .save FILE")
			break
		}
		f, err := os.Create(fields[1])
		if err != nil {
			fmt.Fprintln(out, "error:", err)
			break
		}
		err = db.Save(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(out, "error:", err)
		} else {
			fmt.Fprintln(out, "saved", fields[1])
		}
	case ".load":
		fmt.Fprintln(out, "use `logres -load FILE` to start from a snapshot")
	default:
		fmt.Fprintf(out, "unknown command %s (try .help)\n", fields[0])
	}
	return false
}

func writeAnswer(out io.Writer, ans *logres.Answer) {
	if len(ans.Vars) == 0 {
		if len(ans.Rows) > 0 {
			fmt.Fprintln(out, "yes")
		} else {
			fmt.Fprintln(out, "no")
		}
		return
	}
	fmt.Fprintln(out, strings.Join(ans.Vars, "\t"))
	for _, row := range ans.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		fmt.Fprintln(out, strings.Join(cells, "\t"))
	}
	fmt.Fprintf(out, "(%d answers)\n", len(ans.Rows))
}
