package main

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"logres"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const testSchema = `
domains NAME = string;
associations
  PARENT = (par: NAME, chil: NAME);
  ANC = (anc: NAME, des: NAME);
`

func TestRunScriptFlow(t *testing.T) {
	dir := t.TempDir()
	schema := writeFile(t, dir, "schema.lgr", testSchema)
	load := writeFile(t, dir, "load.lgr", `
mode ridv.
rules
  parent(par: "a", chil: "b").
  parent(par: "b", chil: "c").
end.
`)
	rules := writeFile(t, dir, "rules.lgr", `
mode radi.
rules
  anc(anc: X, des: Y) <- parent(par: X, chil: Y).
  anc(anc: X, des: Z) <- anc(anc: X, des: Y), parent(par: Y, chil: Z).
end.
`)
	snap := filepath.Join(dir, "snap.bin")
	cfg := config{schemaPath: schema, savePath: snap, goal: `?- anc(anc: "a", des: X).`,
		moduleFiles: []string{load, rules}}
	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	// Reload from the snapshot.
	if err := run(context.Background(), config{loadPath: snap, goal: `?- anc(des: X).`, dump: true}); err != nil {
		t.Fatal(err)
	}
}

// -concurrent routes module files through the optimistic apply path; the
// end state matches what the serial path would have produced.
func TestRunConcurrentFlag(t *testing.T) {
	dir := t.TempDir()
	schema := writeFile(t, dir, "schema.lgr", testSchema)
	load := writeFile(t, dir, "load.lgr", `
mode ridv.
rules
  parent(par: "a", chil: "b").
end.
`)
	snap := filepath.Join(dir, "snap.bin")
	cfg := config{schemaPath: schema, savePath: snap, concurrent: true, maxRetries: 3,
		goal: `?- parent(par: X, chil: Y).`, moduleFiles: []string{load}}
	if err := run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(snap)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	db, err := logres.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	if got := db.EDBCount("parent"); got != 1 {
		t.Fatalf("parent count = %d", got)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	if err := run(ctx, config{}); err == nil {
		t.Fatal("missing schema accepted")
	}
	bad := writeFile(t, dir, "bad.lgr", "classes C = (x: NOPE);")
	if err := run(ctx, config{schemaPath: bad}); err == nil {
		t.Fatal("invalid schema accepted")
	}
	schema := writeFile(t, dir, "schema.lgr", testSchema)
	badMod := writeFile(t, dir, "badmod.lgr", "rules nosuch(x: 1). end.")
	if err := run(ctx, config{schemaPath: schema, moduleFiles: []string{badMod}}); err == nil {
		t.Fatal("bad module accepted")
	}
	if err := run(ctx, config{schemaPath: schema, goal: "?- nosuch(x: X)."}); err == nil {
		t.Fatal("bad goal accepted")
	}
	if err := run(ctx, config{loadPath: filepath.Join(dir, "missing.bin")}); err == nil {
		t.Fatal("missing snapshot accepted")
	}
}

const divergentSchema = `
classes C = (v: integer);
associations SEED = (k: integer);
`

const divergentSrc = `
mode ridv.
rules
  seed(k: 1).
  c(self: S, v: 0) <- seed(k: 1).
  c(self: S, v: Y) <- c(v: X), Y = X + 1.
end.
`

// A non-interactive run of a divergent module under a budget flag must
// fail with the typed abort error (main turns that into a non-zero
// exit), and the snapshot file must never be written.
func TestRunBudgetAbort(t *testing.T) {
	dir := t.TempDir()
	schema := writeFile(t, dir, "schema.lgr", divergentSchema)
	mod := writeFile(t, dir, "mod.lgr", divergentSrc)
	snap := filepath.Join(dir, "snap.bin")
	cfg := config{schemaPath: schema, savePath: snap, moduleFiles: []string{mod}}
	cfg.budget = logres.Budget{Timeout: 30 * time.Millisecond}
	err := run(context.Background(), cfg)
	var be *logres.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v (%T), want *logres.BudgetError", err, err)
	}
	if be.Axis != logres.AxisDeadline {
		t.Fatalf("axis = %q, want deadline", be.Axis)
	}
	if _, statErr := os.Stat(snap); statErr == nil {
		t.Fatal("snapshot written despite aborted run")
	}
}

// A canceled context (what Ctrl-C produces through signal.NotifyContext)
// aborts the run with a typed cancellation error.
func TestRunCancellation(t *testing.T) {
	dir := t.TempDir()
	schema := writeFile(t, dir, "schema.lgr", divergentSchema)
	mod := writeFile(t, dir, "mod.lgr", divergentSrc)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := run(ctx, config{schemaPath: schema, moduleFiles: []string{mod}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestREPLSession(t *testing.T) {
	db, err := logres.Open(testSchema)
	if err != nil {
		t.Fatal(err)
	}
	input := strings.Join([]string{
		"mode ridv.",
		"rules",
		`  parent(par: "x", chil: "y").`,
		"end.",
		`?- parent(par: X, chil: Y).`,
		".schema",
		".dump",
		".modules",
		".register",
		"module probe.",
		"rules",
		"goal",
		"  ?- parent(par: X).",
		"end.",
		".call probe",
		".call nosuch",
		".explain",
		".bogus",
		".help",
		".quit",
	}, "\n") + "\n"
	var out bytes.Buffer
	if err := repl(db, strings.NewReader(input), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"applied (RIDV)",
		`"x"	"y"`,
		"(1 answers)",
		"parent = (par: name, chil: name)",
		"registered",
		"applied probe (RIDI)",
		"error:",          // .call nosuch
		"unknown command", // .bogus
		"commands:",       // .help
	} {
		if !strings.Contains(got, want) {
			t.Errorf("REPL output missing %q:\n%s", want, got)
		}
	}
}

// .concurrent on switches module application to the optimistic path; the
// module still applies and the toggle reports both transitions.
func TestREPLConcurrentToggle(t *testing.T) {
	db, err := logres.Open(testSchema)
	if err != nil {
		t.Fatal(err)
	}
	input := strings.Join([]string{
		".concurrent on",
		"mode ridv.",
		"rules",
		`  parent(par: "c", chil: "d").`,
		"end.",
		".concurrent off",
		".concurrent maybe", // usage error
		".quit",
	}, "\n") + "\n"
	var out bytes.Buffer
	if err := repl(db, strings.NewReader(input), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"concurrent application on",
		"applied (RIDV)",
		"concurrent application off",
		"usage: .concurrent on|off",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("REPL output missing %q:\n%s", want, got)
		}
	}
	if got := db.EDBCount("parent"); got != 1 {
		t.Fatalf("parent count = %d", got)
	}
}

func TestREPLSaveAndGoalErrors(t *testing.T) {
	db, err := logres.Open(testSchema)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	snap := filepath.Join(dir, "s.bin")
	input := strings.Join([]string{
		"?- nosuch(x: X).", // goal error
		"rules",
		"  junk(",
		"end.",
		".save " + snap,
		".save",   // usage error
		".load x", // hint
		".quit",
	}, "\n") + "\n"
	var out bytes.Buffer
	if err := repl(db, strings.NewReader(input), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "error:") || !strings.Contains(got, "saved "+snap) ||
		!strings.Contains(got, "usage: .save FILE") {
		t.Fatalf("REPL error handling output:\n%s", got)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatal("snapshot not written")
	}
}

// An interrupt delivered during a REPL evaluation cancels it: the error
// prints as an interruption and the database answers queries afterwards.
func TestREPLInterrupt(t *testing.T) {
	db, err := logres.Open(divergentSchema)
	if err != nil {
		t.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	sig <- os.Interrupt // pending interrupt, delivered once evaluation starts
	evalErr := withInterrupt(sig, func(ctx context.Context) error {
		_, err := db.ExecContext(ctx, divergentSrc)
		return err
	})
	if !errors.Is(evalErr, context.Canceled) {
		t.Fatalf("evaluation not canceled: %v", evalErr)
	}
	var out bytes.Buffer
	printEvalError(&out, evalErr)
	if !strings.Contains(out.String(), "interrupted (database unchanged)") {
		t.Fatalf("interrupt message = %q", out.String())
	}
	// The database is still usable.
	if _, err := db.Query(`?- seed(k: X).`); err != nil {
		t.Fatal(err)
	}
}

func TestWriteAnswerForms(t *testing.T) {
	var out bytes.Buffer
	writeAnswer(&out, &logres.Answer{}) // no vars, no rows → "no"
	writeAnswer(&out, &logres.Answer{Rows: [][]logres.Value{{}}})
	got := out.String()
	if !strings.Contains(got, "no") || !strings.Contains(got, "yes") {
		t.Fatalf("boolean answers = %q", got)
	}
}
