package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"logres"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const testSchema = `
domains NAME = string;
associations
  PARENT = (par: NAME, chil: NAME);
  ANC = (anc: NAME, des: NAME);
`

func TestRunScriptFlow(t *testing.T) {
	dir := t.TempDir()
	schema := writeFile(t, dir, "schema.lgr", testSchema)
	load := writeFile(t, dir, "load.lgr", `
mode ridv.
rules
  parent(par: "a", chil: "b").
  parent(par: "b", chil: "c").
end.
`)
	rules := writeFile(t, dir, "rules.lgr", `
mode radi.
rules
  anc(anc: X, des: Y) <- parent(par: X, chil: Y).
  anc(anc: X, des: Z) <- anc(anc: X, des: Y), parent(par: Y, chil: Z).
end.
`)
	snap := filepath.Join(dir, "snap.bin")
	if err := run(schema, "", snap, `?- anc(anc: "a", des: X).`, false, false, 0, []string{load, rules}); err != nil {
		t.Fatal(err)
	}
	// Reload from the snapshot.
	if err := run("", snap, "", `?- anc(des: X).`, true, false, 0, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run("", "", "", "", false, false, 0, nil); err == nil {
		t.Fatal("missing schema accepted")
	}
	bad := writeFile(t, dir, "bad.lgr", "classes C = (x: NOPE);")
	if err := run(bad, "", "", "", false, false, 0, nil); err == nil {
		t.Fatal("invalid schema accepted")
	}
	schema := writeFile(t, dir, "schema.lgr", testSchema)
	badMod := writeFile(t, dir, "badmod.lgr", "rules nosuch(x: 1). end.")
	if err := run(schema, "", "", "", false, false, 0, []string{badMod}); err == nil {
		t.Fatal("bad module accepted")
	}
	if err := run(schema, "", "", "?- nosuch(x: X).", false, false, 0, nil); err == nil {
		t.Fatal("bad goal accepted")
	}
	if err := run("", filepath.Join(dir, "missing.bin"), "", "", false, false, 0, nil); err == nil {
		t.Fatal("missing snapshot accepted")
	}
}

func TestREPLSession(t *testing.T) {
	db, err := logres.Open(testSchema)
	if err != nil {
		t.Fatal(err)
	}
	input := strings.Join([]string{
		"mode ridv.",
		"rules",
		`  parent(par: "x", chil: "y").`,
		"end.",
		`?- parent(par: X, chil: Y).`,
		".schema",
		".dump",
		".modules",
		".register",
		"module probe.",
		"rules",
		"goal",
		"  ?- parent(par: X).",
		"end.",
		".call probe",
		".call nosuch",
		".explain",
		".bogus",
		".help",
		".quit",
	}, "\n") + "\n"
	var out bytes.Buffer
	if err := repl(db, strings.NewReader(input), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"applied (RIDV)",
		`"x"	"y"`,
		"(1 answers)",
		"parent = (par: name, chil: name)",
		"registered",
		"applied probe (RIDI)",
		"error:",          // .call nosuch
		"unknown command", // .bogus
		"commands:",       // .help
	} {
		if !strings.Contains(got, want) {
			t.Errorf("REPL output missing %q:\n%s", want, got)
		}
	}
}

func TestREPLSaveAndGoalErrors(t *testing.T) {
	db, err := logres.Open(testSchema)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	snap := filepath.Join(dir, "s.bin")
	input := strings.Join([]string{
		"?- nosuch(x: X).", // goal error
		"rules",
		"  junk(",
		"end.",
		".save " + snap,
		".save",   // usage error
		".load x", // hint
		".quit",
	}, "\n") + "\n"
	var out bytes.Buffer
	if err := repl(db, strings.NewReader(input), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "error:") || !strings.Contains(got, "saved "+snap) ||
		!strings.Contains(got, "usage: .save FILE") {
		t.Fatalf("REPL error handling output:\n%s", got)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatal("snapshot not written")
	}
}

func TestWriteAnswerForms(t *testing.T) {
	var out bytes.Buffer
	writeAnswer(&out, &logres.Answer{}) // no vars, no rows → "no"
	writeAnswer(&out, &logres.Answer{Rows: [][]logres.Value{{}}})
	got := out.String()
	if !strings.Contains(got, "no") || !strings.Contains(got, "yes") {
		t.Fatalf("boolean answers = %q", got)
	}
}
