package main

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"logres"
	"logres/internal/bench"
)

// E15 — concurrent module application. Disjoint data-variant modules are
// applied from W goroutines through the optimistic path (snapshot,
// footprint validation, delta merge) and compared against the serial
// write-locked path on the same total module count; a second sweep forces
// a growing fraction of write-write overlap to expose the conflict/retry
// cost. The workload lives here rather than in internal/bench because it
// drives the public Database API (internal/bench must stay importable
// from the root package's benchmarks).

const e15Preds = 8

func e15Schema() string {
	var b strings.Builder
	b.WriteString("associations\n")
	for i := 0; i < e15Preds; i++ {
		fmt.Fprintf(&b, "  Q%d = (x: integer);\n", i)
	}
	return b.String()
}

func e15Module(pred string, i int) string {
	return fmt.Sprintf("mode ridv.\nrules %s(x: %d).\nend.\n", pred, i)
}

// e15Serial applies total modules through the serial path, round-robin
// over the predicates.
func e15Serial(total int) (time.Duration, error) {
	db, err := logres.Open(e15Schema())
	if err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < total; i++ {
		if _, err := db.Exec(e15Module(fmt.Sprintf("q%d", i%e15Preds), i)); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// e15Concurrent applies total modules from workers goroutines; sharePct
// percent of each worker's applications target the shared predicate q0,
// the rest the worker's own predicate. Returns the wall time and the
// conflict/retry/abort counts.
func e15Concurrent(total, workers, sharePct int) (time.Duration, [3]int64, error) {
	m := logres.NewMetrics()
	db, err := logres.Open(e15Schema(), logres.WithMetrics(m))
	if err != nil {
		return 0, [3]int64{}, err
	}
	per := total / workers
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	start := time.Now()
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			own := fmt.Sprintf("q%d", 1+g%(e15Preds-1))
			for i := 0; i < per; i++ {
				pred := own
				if (i*31+g*17)%100 < sharePct {
					pred = "q0"
				}
				if _, err := db.ExecConcurrent(e15Module(pred, g*per+i)); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		// Retry exhaustion under heavy contention is a measured outcome,
		// not a benchmark failure.
		var ce *logres.ConflictError
		if !errors.As(err, &ce) {
			return 0, [3]int64{}, err
		}
	}
	counts := [3]int64{
		m.Counter("logres_module_conflicts_total").Value(),
		m.Counter("logres_module_retries_total").Value(),
		m.Counter(`logres_aborts_total{axis="retries"}`).Value(),
	}
	return elapsed, counts, nil
}

func modsPerSec(total int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(total) / d.Seconds()
}

func runE15(quick bool) (*bench.Table, error) {
	t := &bench.Table{
		Title:   "E15 — concurrent module application (optimistic commit)",
		Columns: []string{"workload", "workers", "share%", "modules", "conflicts", "retries", "aborts", "time", "mod/s", "speedup"},
	}
	total := 192
	if quick {
		total = 48
	}

	dSerial, err := e15Serial(total)
	if err != nil {
		return nil, err
	}
	t.AddRow("serial", 1, 0, total, 0, 0, 0, dSerial, modsPerSec(total, dSerial), 1.0)

	// Disjoint scaling: every worker owns its predicate.
	for _, w := range []int{1, 2, 4, 8} {
		d, counts, err := e15Concurrent(total, w, 0)
		if err != nil {
			return nil, err
		}
		t.AddRow("disjoint", w, 0, total, counts[0], counts[1], counts[2],
			d, modsPerSec(total, d), float64(dSerial)/float64(d))
	}

	// Conflict sweep at four workers: a growing share of applications
	// collide on one predicate.
	for _, share := range []int{25, 50, 100} {
		d, counts, err := e15Concurrent(total, 4, share)
		if err != nil {
			return nil, err
		}
		t.AddRow("contended", 4, share, total, counts[0], counts[1], counts[2],
			d, modsPerSec(total, d), float64(dSerial)/float64(d))
	}
	return t, nil
}
