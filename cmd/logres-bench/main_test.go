package main

import (
	"bytes"
	"testing"

	"logres/internal/bench"
)

// Run every experiment in quick mode: the tables must build without error
// and carry at least one data row each. This keeps the EXPERIMENTS.md
// driver working as the engine evolves.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("bench driver")
	}
	experiments := []struct {
		id  string
		run func(quick bool) (*bench.Table, error)
	}{
		{"E1", runE1}, {"E2", runE2}, {"E3", runE3}, {"E4", runE4},
		{"E5", runE5}, {"E6", runE6}, {"E7", runE7}, {"E8", runE8},
		{"E9", runE9}, {"E10", runE10}, {"E11", runE11},
	}
	for _, e := range experiments {
		e := e
		t.Run(e.id, func(t *testing.T) {
			tb, err := e.run(true)
			if err != nil {
				t.Fatal(err)
			}
			if len(tb.Rows) == 0 {
				t.Fatal("no rows")
			}
			var buf bytes.Buffer
			tb.Print(&buf)
			if buf.Len() == 0 {
				t.Fatal("empty table output")
			}
		})
	}
}

func TestSizesHelper(t *testing.T) {
	full, small := []int{1, 2, 3}, []int{1}
	if got := sizes(false, full, small); len(got) != 3 {
		t.Fatal("full sizes wrong")
	}
	if got := sizes(true, full, small); len(got) != 1 {
		t.Fatal("quick sizes wrong")
	}
}
