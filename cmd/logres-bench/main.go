// Command logres-bench regenerates the experiment tables of
// EXPERIMENTS.md (E1–E11): workload generation, parameter sweeps,
// baselines, and aligned-table output. Each table corresponds to one
// BenchmarkE* family in bench_test.go; this driver prints single-shot
// wall-clock rows, which is what EXPERIMENTS.md records.
//
// Usage:
//
//	logres-bench [-quick] [-only E1,E5]
//	logres-bench -json BENCH_pr4.json
//
// The -json mode runs a small tracer-overhead smoke suite (the E1 and
// E12 workloads with tracing off vs a JSONL tracer discarding its
// output) and writes machine-readable ns/op results instead of tables.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"logres/internal/ast"
	"logres/internal/bench"
	"logres/internal/obs"
)

type experiment struct {
	id  string
	run func(quick bool) (*bench.Table, error)
}

func main() {
	quick := flag.Bool("quick", false, "smaller parameter sweeps")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E1,E5)")
	jsonPath := flag.String("json", "", "run the tracer-overhead smoke suite and write ns/op results to this file")
	flag.Parse()

	if *jsonPath != "" {
		if err := runSmoke(*jsonPath); err != nil {
			fmt.Fprintln(os.Stderr, "logres-bench:", err)
			os.Exit(1)
		}
		return
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}
	experiments := []experiment{
		{"E1", runE1}, {"E2", runE2}, {"E3", runE3}, {"E4", runE4},
		{"E5", runE5}, {"E6", runE6}, {"E7", runE7}, {"E8", runE8},
		{"E9", runE9}, {"E10", runE10}, {"E11", runE11}, {"E12", runE12},
		{"E15", runE15}, {"E16", runE16}, {"E17", runE17}, {"E18", runE18},
		{"E19", runE19}, {"E20", runE20},
	}
	for _, e := range experiments {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		t, err := e.run(*quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "logres-bench: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		t.Print(os.Stdout)
	}
}

// smokeResult is one row of the -json report.
type smokeResult struct {
	Name    string `json:"name"`
	Tracer  string `json:"tracer"`
	Workers int    `json:"workers"`
	Shards  int    `json:"shards"`
	Iters   int    `json:"iters"`
	NsPerOp int64  `json:"ns_per_op"`
	// HTTP rows (E16) also report route latencies from the server's
	// duration histograms.
	P50Ns int64 `json:"p50_ns,omitempty"`
	P95Ns int64 `json:"p95_ns,omitempty"`
	P99Ns int64 `json:"p99_ns,omitempty"`
}

// smokeCase is one workload × tracer configuration of the smoke suite.
type smokeCase struct {
	name            string
	workers, shards int
	edges           int
}

// runSmoke measures the E1 (serial) and E12 (parallel) chain-closure
// workloads with tracing off and with a JSONL tracer writing to
// io.Discard, plus the E15 disjoint-module throughput comparison (serial
// write-locked path vs four optimistic appliers), and writes the ns/op
// comparison as JSON — the CI bench-smoke artifact guarding the tracer's
// overhead and concurrent-commit contracts.
func runSmoke(path string) error {
	cases := []smokeCase{
		{name: "E1_tc_chain128_serial", workers: 1, shards: 1, edges: 128},
		{name: "E12_tc_chain256_par4", workers: 4, shards: 4, edges: 256},
	}
	var results []smokeResult
	for _, c := range cases {
		for _, traced := range []bool{false, true} {
			s, err := bench.NewLogresTC(bench.Chain(c.edges), true)
			if err != nil {
				return err
			}
			s.Program.SetWorkers(c.workers)
			s.Program.SetShards(c.shards)
			label := "off"
			if traced {
				s.Program.SetTracer(obs.NewJSONL(io.Discard))
				label = "jsonl"
			}
			if _, err := s.Run(); err != nil { // warm-up
				return err
			}
			iters := 0
			start := time.Now()
			for time.Since(start) < 500*time.Millisecond || iters < 5 {
				if _, err := s.Run(); err != nil {
					return err
				}
				iters++
			}
			results = append(results, smokeResult{
				Name:    c.name,
				Tracer:  label,
				Workers: c.workers,
				Shards:  c.shards,
				Iters:   iters,
				NsPerOp: time.Since(start).Nanoseconds() / int64(iters),
			})
		}
	}
	// E17 rows: row vs columnar evaluation on the E1 chain-128 closure.
	// The pair is the artifact's record of the vectorized speedup.
	for _, vec := range []bool{false, true} {
		s, err := bench.NewLogresTC(bench.Chain(128), true)
		if err != nil {
			return err
		}
		name := "E17_tc_chain128_row"
		if vec {
			s.Program.SetVectorize(true)
			name = "E17_tc_chain128_vectorized"
		}
		if _, err := s.Run(); err != nil { // warm-up
			return err
		}
		iters := 0
		start := time.Now()
		for time.Since(start) < 500*time.Millisecond || iters < 5 {
			if _, err := s.Run(); err != nil {
				return err
			}
			iters++
		}
		results = append(results, smokeResult{
			Name:    name,
			Tracer:  "off",
			Workers: 1,
			Shards:  1,
			Iters:   iters,
			NsPerOp: time.Since(start).Nanoseconds() / int64(iters),
		})
	}

	// E15 throughput rows: one module application is one "op".
	const e15Total = 96
	dSerial, err := e15Serial(e15Total)
	if err != nil {
		return err
	}
	results = append(results, smokeResult{
		Name: "E15_disjoint_serial", Tracer: "off", Workers: 1, Shards: 1,
		Iters: e15Total, NsPerOp: dSerial.Nanoseconds() / e15Total,
	})
	dConc, _, err := e15Concurrent(e15Total, 4, 0)
	if err != nil {
		return err
	}
	results = append(results, smokeResult{
		Name: "E15_disjoint_conc4", Tracer: "off", Workers: 4, Shards: 1,
		Iters: e15Total, NsPerOp: dConc.Nanoseconds() / e15Total,
	})

	// E18 durability rows: the same workload over a durable database,
	// one row per fsync policy — the artifact's record of what
	// crash-safety costs per module application.
	const e18Total = 64
	for _, p := range e18Policies {
		d, err := e18Durable(e18Total, 1, p)
		if err != nil {
			return err
		}
		results = append(results, smokeResult{
			Name: "E18_wal_fsync_" + p.String(), Tracer: "off", Workers: 1, Shards: 1,
			Iters: e18Total, NsPerOp: d.Nanoseconds() / e18Total,
		})
	}

	// E16 HTTP rows: one module application over the wire is one "op";
	// latencies are the server's own exec-route histogram quantiles.
	for _, cfg := range [][2]int{{1, 0}, {4, 4}} {
		appliers, readers := cfg[0], cfg[1]
		base, m, shutdown, err := e16Server()
		if err != nil {
			return err
		}
		res, err := e16Load(base, m, appliers, readers, 12)
		if err != nil {
			_ = shutdown()
			return err
		}
		if err := shutdown(); err != nil {
			return err
		}
		results = append(results, smokeResult{
			Name:    fmt.Sprintf("E16_http_apply%d_read%d", appliers, readers),
			Tracer:  "off",
			Workers: appliers,
			Shards:  1,
			Iters:   res.applies,
			NsPerOp: res.elapsed.Nanoseconds() / int64(res.applies),
			P50Ns:   res.execP50.Nanoseconds(),
			P95Ns:   res.execP95.Nanoseconds(),
			P99Ns:   res.execP99.Nanoseconds(),
		})
	}

	// E19 rows: the profiling-overhead pair — the same exec workload
	// with profiling off, per-request profiles, and the slow-query log
	// armed. CI compares off vs profile to keep profiling within noise.
	for _, cfg := range e19Configs {
		base, m, shutdown, err := e19Server(cfg)
		if err != nil {
			return err
		}
		res, err := e19Load(base, m, cfg, 24)
		if err != nil {
			_ = shutdown()
			return err
		}
		if err := shutdown(); err != nil {
			return err
		}
		results = append(results, smokeResult{
			Name:    "E19_profile_" + cfg.name,
			Tracer:  "off",
			Workers: 1,
			Shards:  1,
			Iters:   res.applies,
			NsPerOp: res.elapsed.Nanoseconds() / int64(res.applies),
			P50Ns:   res.execP50.Nanoseconds(),
			P95Ns:   res.execP95.Nanoseconds(),
		})
	}

	// E20 rows: incremental maintenance vs from-scratch recomputation on
	// the write-heavy commit+read stream — the artifact's record of the
	// maintained view's speedup.
	e20Rows, err := e20SmokeRows()
	if err != nil {
		return err
	}
	results = append(results, e20Rows...)

	out, err := json.MarshalIndent(map[string]any{"suite": "tracer-overhead", "results": results}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

func sizes(quick bool, full, small []int) []int {
	if quick {
		return small
	}
	return full
}

func runE1(quick bool) (*bench.Table, error) {
	t := &bench.Table{
		Title:   "E1 — transitive closure (chain graphs)",
		Columns: []string{"n", "edges", "derived", "logres-naive", "logres-semi", "logres-par4", "algres-naive", "algres-semi", "algres-par4", "datalog-semi"},
	}
	for _, n := range sizes(quick, []int{32, 64, 128}, []int{16, 32}) {
		edges := bench.Chain(n)
		derived := n * (n + 1) / 2

		ln, err := bench.NewLogresTC(edges, false)
		if err != nil {
			return nil, err
		}
		dNaive, err := bench.Timed(func() error { _, err := ln.Run(); return err })
		if err != nil {
			return nil, err
		}
		ls, err := bench.NewLogresTC(edges, true)
		if err != nil {
			return nil, err
		}
		dSemi, err := bench.Timed(func() error { _, err := ls.Run(); return err })
		if err != nil {
			return nil, err
		}
		lp, err := bench.NewLogresTC(edges, true)
		if err != nil {
			return nil, err
		}
		lp.Program.SetWorkers(4)
		lp.Program.SetShards(4)
		dPar, err := bench.Timed(func() error { _, err := lp.Run(); return err })
		if err != nil {
			return nil, err
		}
		an, err := bench.NewAlgresTC(edges, false)
		if err != nil {
			return nil, err
		}
		dAN, err := bench.Timed(func() error { _, err := an.Run(); return err })
		if err != nil {
			return nil, err
		}
		as, err := bench.NewAlgresTC(edges, true)
		if err != nil {
			return nil, err
		}
		dAS, err := bench.Timed(func() error { _, err := as.Run(); return err })
		if err != nil {
			return nil, err
		}
		ap, err := bench.NewAlgresTCWorkers(edges, true, 4)
		if err != nil {
			return nil, err
		}
		dAP, err := bench.Timed(func() error { _, err := ap.Run(); return err })
		if err != nil {
			return nil, err
		}
		dl, err := bench.NewDatalogTC(edges, true)
		if err != nil {
			return nil, err
		}
		dDL, err := bench.Timed(func() error { dl.Run(); return nil })
		if err != nil {
			return nil, err
		}
		t.AddRow(n, len(edges), derived, dNaive, dSemi, dPar, dAN, dAS, dAP, dDL)
	}
	return t, nil
}

func runE2(quick bool) (*bench.Table, error) {
	t := &bench.Table{
		Title:   "E2 — same generation (balanced binary trees)",
		Columns: []string{"depth", "nodes", "sg-pairs", "logres-semi", "logres-par4", "datalog-semi"},
	}
	for _, depth := range sizes(quick, []int{3, 4, 5}, []int{2, 3}) {
		edges := bench.Tree(2, depth)
		s, err := bench.NewLogresSG(edges, true)
		if err != nil {
			return nil, err
		}
		var pairs int
		d, err := bench.Timed(func() error {
			var err error
			pairs, err = s.RunSG()
			return err
		})
		if err != nil {
			return nil, err
		}
		sp, err := bench.NewLogresSG(edges, true)
		if err != nil {
			return nil, err
		}
		sp.Program.SetWorkers(4)
		dPar, err := bench.Timed(func() error { _, err := sp.RunSG(); return err })
		if err != nil {
			return nil, err
		}
		// Flat baseline via datalog's same-generation is exercised in its
		// package tests; here we reuse the closure engine as proxy cost.
		dl, err := bench.NewDatalogTC(edges, true)
		if err != nil {
			return nil, err
		}
		dDL, err := bench.Timed(func() error { dl.Run(); return nil })
		if err != nil {
			return nil, err
		}
		t.AddRow(depth, len(edges)+1, pairs, d, dPar, dDL)
	}
	return t, nil
}

func runE3(quick bool) (*bench.Table, error) {
	t := &bench.Table{
		Title:   "E3 — oid invention vs plain derivation",
		Columns: []string{"n", "invention", "derivation", "ratio"},
	}
	for _, n := range sizes(quick, []int{100, 400, 800}, []int{50, 100}) {
		inv, err := bench.NewInvention(n, true)
		if err != nil {
			return nil, err
		}
		dInv, err := bench.Timed(func() error { _, err := inv.Run("item"); return err })
		if err != nil {
			return nil, err
		}
		fl, err := bench.NewInvention(n, false)
		if err != nil {
			return nil, err
		}
		dFlat, err := bench.Timed(func() error { _, err := fl.Run("flat"); return err })
		if err != nil {
			return nil, err
		}
		t.AddRow(n, dInv, dFlat, float64(dInv)/float64(dFlat))
	}
	return t, nil
}

func runE4(quick bool) (*bench.Table, error) {
	t := &bench.Table{
		Title:   "E4 — isa-propagation overhead (hierarchy depth, 200 objects)",
		Columns: []string{"depth", "time", "facts-per-object"},
	}
	for _, depth := range sizes(quick, []int{0, 1, 2, 4}, []int{0, 2}) {
		s, leaf, err := bench.NewIsaChain(depth, 200)
		if err != nil {
			return nil, err
		}
		d, err := bench.Timed(func() error { _, err := s.Run(leaf); return err })
		if err != nil {
			return nil, err
		}
		t.AddRow(depth, d, depth+1)
	}
	return t, nil
}

func runE5(quick bool) (*bench.Table, error) {
	t := &bench.Table{
		Title:   "E5 — powerset (Example 3.3)",
		Columns: []string{"d", "|power|", "time"},
	}
	for _, d := range sizes(quick, []int{4, 6, 8}, []int{3, 4}) {
		s, err := bench.NewPowerset(d)
		if err != nil {
			return nil, err
		}
		var n int
		dur, err := bench.Timed(func() error {
			var err error
			n, err = s.Run()
			return err
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(d, n, dur)
	}
	return t, nil
}

func runE6(quick bool) (*bench.Table, error) {
	t := &bench.Table{
		Title:   "E6 — module application modes (200-fact update)",
		Columns: []string{"mode", "time"},
	}
	n := 200
	if quick {
		n = 50
	}
	for _, mode := range []ast.Mode{ast.RIDI, ast.RADI, ast.RIDV, ast.RADV} {
		s, err := bench.NewModeWorkload(n, mode)
		if err != nil {
			return nil, err
		}
		d, err := bench.Timed(func() error { _, err := s.Run(); return err })
		if err != nil {
			return nil, err
		}
		t.AddRow(mode.String(), d)
	}
	return t, nil
}

func runE7(quick bool) (*bench.Table, error) {
	t := &bench.Table{
		Title:   "E7 — negation: stratified vs whole-program inflationary",
		Columns: []string{"n", "strategy", "|unreach|", "time"},
	}
	for _, n := range sizes(quick, []int{64, 128}, []int{16}) {
		for _, strat := range []bool{true, false} {
			s, err := bench.NewWinLose(bench.Chain(n), strat)
			if err != nil {
				return nil, err
			}
			var u int
			d, err := bench.Timed(func() error {
				var err error
				u, err = s.RunPred("unreach")
				return err
			})
			if err != nil {
				return nil, err
			}
			name := "stratified"
			if !strat {
				name = "inflationary"
			}
			t.AddRow(n, name, u, d)
		}
	}
	return t, nil
}

func runE8(quick bool) (*bench.Table, error) {
	t := &bench.Table{
		Title:   "E8 — data-function nesting (descendants per person)",
		Columns: []string{"tree-depth", "ancestors", "time"},
	}
	for _, depth := range sizes(quick, []int{3, 4, 5}, []int{2, 3}) {
		s, err := bench.NewDescendants(bench.Tree(2, depth))
		if err != nil {
			return nil, err
		}
		var n int
		d, err := bench.Timed(func() error {
			var err error
			n, err = s.RunPred("ancestor")
			return err
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(depth, n, d)
	}
	return t, nil
}

func runE9(quick bool) (*bench.Table, error) {
	t := &bench.Table{
		Title:   "E9 — snapshot codec",
		Columns: []string{"objects", "bytes", "encode", "decode"},
	}
	for _, n := range sizes(quick, []int{100, 1000, 5000}, []int{50, 100}) {
		s, err := bench.NewSnapshot(n)
		if err != nil {
			return nil, err
		}
		var sz int
		dEnc, err := bench.Timed(func() error {
			var err error
			sz, err = s.Encode()
			return err
		})
		if err != nil {
			return nil, err
		}
		dDec, err := bench.Timed(func() error { _, err := s.Decode(); return err })
		if err != nil {
			return nil, err
		}
		t.AddRow(n, sz, dEnc, dDec)
	}
	return t, nil
}

func runE10(quick bool) (*bench.Table, error) {
	t := &bench.Table{
		Title:   "E10 — ALGRES operator microbenchmarks",
		Columns: []string{"n", "join", "join-par4", "nest+unnest"},
	}
	for _, n := range sizes(quick, []int{1000, 10000}, []int{200, 1000}) {
		a := bench.NewAlgebraOps(n)
		var dJoin, dJoinPar, dNest time.Duration
		dJoin, err := bench.Timed(func() error { a.Join(); return nil })
		if err != nil {
			return nil, err
		}
		dJoinPar, err = bench.Timed(func() error { a.JoinWorkers(4); return nil })
		if err != nil {
			return nil, err
		}
		dNest, err = bench.Timed(func() error { _, err := a.NestUnnest(); return err })
		if err != nil {
			return nil, err
		}
		t.AddRow(n, dJoin, dJoinPar, dNest)
	}
	return t, nil
}

func runE12(quick bool) (*bench.Table, error) {
	t := &bench.Table{
		Title:   "E12 — parallel semi-naive scaling (chain closure)",
		Columns: []string{"n", "workers", "shards", "derived", "time", "speedup"},
	}
	for _, n := range sizes(quick, []int{1024, 4096}, []int{128, 256}) {
		edges := bench.Chain(n)
		var serial time.Duration
		for _, cfg := range [][2]int{{1, 1}, {2, 2}, {4, 4}, {8, 8}} {
			workers, shards := cfg[0], cfg[1]
			s, err := bench.NewLogresTC(edges, true)
			if err != nil {
				return nil, err
			}
			s.Program.SetWorkers(workers)
			s.Program.SetShards(shards)
			var derived int
			d, err := bench.Timed(func() error {
				var err error
				derived, err = s.Run()
				return err
			})
			if err != nil {
				return nil, err
			}
			if workers == 1 {
				serial = d
			}
			t.AddRow(n, workers, shards, derived, d, float64(serial)/float64(d))
		}
	}
	return t, nil
}

func runE17(quick bool) (*bench.Table, error) {
	t := &bench.Table{
		Title:   "E17 — row vs columnar evaluation (chain closure + join micro)",
		Columns: []string{"n", "derived", "row-semi", "vectorized", "speedup", "join-row", "join-vec"},
	}
	for _, n := range sizes(quick, []int{32, 64, 128}, []int{16, 32}) {
		edges := bench.Chain(n)
		sr, err := bench.NewLogresTC(edges, true)
		if err != nil {
			return nil, err
		}
		var derived int
		dRow, err := bench.Timed(func() error {
			var err error
			derived, err = sr.Run()
			return err
		})
		if err != nil {
			return nil, err
		}
		sv, err := bench.NewLogresTC(edges, true)
		if err != nil {
			return nil, err
		}
		sv.Program.SetVectorize(true)
		var derivedVec int
		dVec, err := bench.Timed(func() error {
			var err error
			derivedVec, err = sv.Run()
			return err
		})
		if err != nil {
			return nil, err
		}
		if derivedVec != derived {
			return nil, fmt.Errorf("E17: vectorized derived %d facts, row %d", derivedVec, derived)
		}
		a := bench.NewAlgebraOps(n * 50)
		dJoinRow, err := bench.Timed(func() error { a.Join(); return nil })
		if err != nil {
			return nil, err
		}
		dJoinVec, err := bench.Timed(func() error { a.JoinVec(); return nil })
		if err != nil {
			return nil, err
		}
		t.AddRow(n, derived, dRow, dVec, float64(dRow)/float64(dVec), dJoinRow, dJoinVec)
	}
	return t, nil
}

func runE11(quick bool) (*bench.Table, error) {
	t := &bench.Table{
		Title:   "E11 — rule semantics: inflationary vs non-inflationary (chain closure)",
		Columns: []string{"n", "semantics", "derived", "time"},
	}
	for _, n := range sizes(quick, []int{16, 32, 64}, []int{8, 16}) {
		for _, nonInf := range []bool{false, true} {
			s, err := bench.NewLogresTCSemantics(bench.Chain(n), nonInf)
			if err != nil {
				return nil, err
			}
			var derived int
			d, err := bench.Timed(func() error {
				var err error
				derived, err = s.Run()
				return err
			})
			if err != nil {
				return nil, err
			}
			name := "inflationary"
			if nonInf {
				name = "non-inflationary"
			}
			t.AddRow(n, name, derived, d)
		}
	}
	return t, nil
}
