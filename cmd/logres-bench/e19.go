package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"logres/client"
	"logres/internal/bench"
	"logres/internal/obs"
	"logres/internal/server"
)

// E19 — request profiling overhead. The same single-applier exec
// workload as E16 runs against an in-process server in three
// observability configurations:
//
//	off      — plain requests (spans are still minted: that is the
//	           always-on propagation path whose cost this measures)
//	profile  — every request asks for a profile (ExecRequest.Profile),
//	           so a ProfileCollector fans in beside the metrics adapter
//	           and the response carries the per-stratum account
//	slowlog  — the slow-query log is armed with a 1ns threshold and a
//	           discard writer: every request is collected AND logged,
//	           the worst case the triage surfaces can impose
//
// The off-vs-profile delta is the acceptance criterion: profiling a
// request must cost noise, not a latency tier.

// e19Config is one observability configuration of the sweep.
type e19Config struct {
	name    string
	profile bool // ask for a profile per request
	slowlog bool // arm the slow-query log server-side
}

var e19Configs = []e19Config{
	{name: "off"},
	{name: "profile", profile: true},
	{name: "slowlog", slowlog: true},
}

// e19Server starts the in-process daemon for one configuration.
func e19Server(cfg e19Config) (string, *obs.Metrics, func() error, error) {
	m := obs.NewMetrics()
	opts := server.Options{Metrics: m}
	if cfg.slowlog {
		opts.SlowQueryThreshold = time.Nanosecond
		opts.SlowQueryLog = io.Discard
	}
	srv := server.New(opts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	shutdown := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		return hs.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), m, shutdown, nil
}

// e19Result carries one configuration's measurements.
type e19Result struct {
	elapsed          time.Duration
	applies          int
	execP50, execP95 time.Duration
}

// e19Load drives applies sequential module applications through one
// client, optionally requesting a profile per exec, and verifies the
// profile actually arrived (a zero-cost "optimization" that drops the
// feature would otherwise benchmark beautifully).
func e19Load(base string, m *obs.Metrics, cfg e19Config, applies int) (*e19Result, error) {
	c := client.New(base)
	ctx := context.Background()
	if err := c.Create(ctx, "bench", e15Schema(), nil); err != nil {
		return nil, err
	}
	defer func() { _ = c.Drop(ctx, "bench") }()

	start := time.Now()
	for i := 0; i < applies; i++ {
		res, err := c.ExecRequest(ctx, "bench", client.ExecRequest{
			Module:  e15Module("q1", i),
			Profile: cfg.profile,
		})
		if err != nil {
			return nil, err
		}
		if cfg.profile && (res.Profile == nil || res.Profile.Rounds == 0) {
			return nil, fmt.Errorf("e19: profile requested but response carried %+v", res.Profile)
		}
		if !cfg.profile && res.Profile != nil {
			return nil, fmt.Errorf("e19: unrequested profile on the wire")
		}
	}
	elapsed := time.Since(start)

	execHist := m.Histogram(`logres_http_request_duration_ns{route="exec"}`)
	return &e19Result{
		elapsed: elapsed,
		applies: applies,
		execP50: time.Duration(execHist.Quantile(0.50)),
		execP95: time.Duration(execHist.Quantile(0.95)),
	}, nil
}

func runE19(quick bool) (*bench.Table, error) {
	t := &bench.Table{
		Title:   "E19 — request profiling overhead (exec over loopback HTTP)",
		Columns: []string{"config", "applies", "time", "ns/op", "exec-p50", "exec-p95", "vs-off"},
	}
	applies := 96
	if quick {
		applies = 24
	}
	var offNs int64
	for _, cfg := range e19Configs {
		base, m, shutdown, err := e19Server(cfg)
		if err != nil {
			return nil, err
		}
		res, err := e19Load(base, m, cfg, applies)
		if err != nil {
			_ = shutdown()
			return nil, err
		}
		if err := shutdown(); err != nil {
			return nil, err
		}
		nsPerOp := res.elapsed.Nanoseconds() / int64(res.applies)
		vsOff := "-"
		if cfg.name == "off" {
			offNs = nsPerOp
		} else if offNs > 0 {
			vsOff = fmt.Sprintf("%+.1f%%", 100*float64(nsPerOp-offNs)/float64(offNs))
		}
		t.AddRow(cfg.name, res.applies, res.elapsed, nsPerOp, res.execP50, res.execP95, vsOff)
	}
	return t, nil
}
