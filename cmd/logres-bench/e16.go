package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"logres/client"
	"logres/internal/bench"
	"logres/internal/obs"
	"logres/internal/server"
)

// E16 — HTTP data-plane load. An in-process logres-server on a loopback
// listener takes W applier clients (disjoint data-variant modules
// through POST /exec, i.e. the optimistic concurrent path over the
// wire) and R reader clients (POST /query over a fixed goal) for a
// fixed number of applications per applier. Throughput is applies per
// second; latencies come from the server's own
// logres_http_request_duration_ns route histograms, so the numbers on
// /metrics and the numbers in this table are the same measurement.

// e16Server starts the in-process daemon and returns its base URL, the
// shared metrics registry, and a shutdown func.
func e16Server() (string, *obs.Metrics, func() error, error) {
	m := obs.NewMetrics()
	srv := server.New(server.Options{Metrics: m})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	shutdown := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		return hs.Shutdown(ctx)
	}
	return "http://" + ln.Addr().String(), m, shutdown, nil
}

// e16Result carries one configuration's measurements.
type e16Result struct {
	elapsed                  time.Duration
	applies                  int
	conflicts                int64
	execP50, execP95, execP99 time.Duration
	queryP50, queryP95       time.Duration
}

// e16Load drives appliers×perApplier module applications and one
// query per applier batch from readers concurrent readers.
func e16Load(base string, m *obs.Metrics, appliers, readers, perApplier int) (*e16Result, error) {
	c := client.New(base)
	ctx := context.Background()
	if err := c.Create(ctx, "bench", e15Schema(), nil); err != nil {
		return nil, err
	}
	defer func() { _ = c.Drop(ctx, "bench") }()

	stop := make(chan struct{})
	readerErrs := make(chan error, readers)
	for r := 0; r < readers; r++ {
		go func() {
			for {
				select {
				case <-stop:
					readerErrs <- nil
					return
				default:
				}
				if _, err := c.Query(ctx, "bench", "?- q1(x: X)."); err != nil {
					readerErrs <- err
					return
				}
			}
		}()
	}

	applyErrs := make(chan error, appliers)
	start := time.Now()
	for g := 0; g < appliers; g++ {
		go func(g int) {
			pred := fmt.Sprintf("q%d", 1+g%(e15Preds-1))
			for i := 0; i < perApplier; i++ {
				if _, err := c.Exec(ctx, "bench", e15Module(pred, g*perApplier+i)); err != nil {
					applyErrs <- err
					return
				}
			}
			applyErrs <- nil
		}(g)
	}
	for g := 0; g < appliers; g++ {
		if err := <-applyErrs; err != nil {
			close(stop)
			return nil, err
		}
	}
	elapsed := time.Since(start)
	close(stop)
	for r := 0; r < readers; r++ {
		if err := <-readerErrs; err != nil {
			return nil, err
		}
	}

	execHist := m.Histogram(`logres_http_request_duration_ns{route="exec"}`)
	queryHist := m.Histogram(`logres_http_request_duration_ns{route="query"}`)
	return &e16Result{
		elapsed:   elapsed,
		applies:   appliers * perApplier,
		conflicts: m.Counter("logres_module_conflicts_total").Value(),
		execP50:   time.Duration(execHist.Quantile(0.50)),
		execP95:   time.Duration(execHist.Quantile(0.95)),
		execP99:   time.Duration(execHist.Quantile(0.99)),
		queryP50:  time.Duration(queryHist.Quantile(0.50)),
		queryP95:  time.Duration(queryHist.Quantile(0.95)),
	}, nil
}

func runE16(quick bool) (*bench.Table, error) {
	t := &bench.Table{
		Title:   "E16 — HTTP data-plane load (appliers + readers, loopback)",
		Columns: []string{"appliers", "readers", "applies", "conflicts", "time", "applies/s", "exec-p50", "exec-p95", "exec-p99", "query-p50", "query-p95"},
	}
	perApplier := 48
	if quick {
		perApplier = 12
	}
	for _, cfg := range [][2]int{{1, 0}, {2, 2}, {4, 4}} {
		appliers, readers := cfg[0], cfg[1]
		// A fresh server per configuration keeps the histograms
		// configuration-local.
		base, m, shutdown, err := e16Server()
		if err != nil {
			return nil, err
		}
		res, err := e16Load(base, m, appliers, readers, perApplier)
		if err != nil {
			_ = shutdown()
			return nil, err
		}
		if err := shutdown(); err != nil {
			return nil, err
		}
		t.AddRow(appliers, readers, res.applies, res.conflicts, res.elapsed,
			modsPerSec(res.applies, res.elapsed),
			res.execP50, res.execP95, res.execP99, res.queryP50, res.queryP95)
	}
	return t, nil
}
