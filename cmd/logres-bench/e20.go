package main

import (
	"fmt"
	"strings"
	"time"

	"logres"
	"logres/internal/bench"
)

// E20 — incremental view maintenance. A write-heavy workload over a
// large derived instance: a chain-n edge base with the transitive
// closure installed as persistent rules, then a stream of single-edge
// commits each followed by a read of the derived instance (the
// monitoring pattern live subscriptions serve). A scratch database
// re-derives the O(n²) closure on every read; an incremental one pays
// delta propagation at commit and serves the read from the maintained
// set. The measured unit is one commit+read cycle.

const e20Schema = `
associations
  EDGE = (src: integer, dst: integer);
  TC = (src: integer, dst: integer);
`

const e20Rules = `
mode radv.
rules
  tc(src: X, dst: Y) <- edge(src: X, dst: Y).
  tc(src: X, dst: Z) <- tc(src: X, dst: Y), edge(src: Y, dst: Z).
end.
`

// e20Cycle runs the workload and times the commit+read stream: commits
// single edges extending the chain's tail (each derives a fresh batch
// of closure facts), reading the instance size after every commit.
func e20Cycle(n, commits int, incremental bool) (time.Duration, error) {
	var opts []logres.Option
	if incremental {
		opts = append(opts, logres.WithIncremental(true))
	}
	db, err := logres.Open(e20Schema, opts...)
	if err != nil {
		return 0, err
	}
	var b strings.Builder
	b.WriteString("mode ridv.\nrules\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "  edge(src: %d, dst: %d).\n", i, i+1)
	}
	b.WriteString("end.\n")
	if _, err := db.Exec(b.String()); err != nil {
		return 0, err
	}
	if _, err := db.Exec(e20Rules); err != nil {
		return 0, err
	}
	if _, err := db.Count("tc"); err != nil { // warm-up read
		return 0, err
	}
	start := time.Now()
	for c := 0; c < commits; c++ {
		src := fmt.Sprintf("mode ridv.\nrules\n  edge(src: %d, dst: %d).\nend.\n", n+c, n+c+1)
		if _, err := db.ExecConcurrent(src); err != nil {
			return 0, err
		}
		if _, err := db.Count("tc"); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

func runE20(quick bool) (*bench.Table, error) {
	t := &bench.Table{
		Title:   "E20 — incremental maintenance: commit+read latency vs from-scratch recomputation",
		Columns: []string{"n", "commits", "scratch", "incremental", "speedup"},
	}
	const commits = 16
	for _, n := range sizes(quick, []int{64, 128, 256}, []int{32, 64}) {
		dScratch, err := e20Cycle(n, commits, false)
		if err != nil {
			return nil, err
		}
		dInc, err := e20Cycle(n, commits, true)
		if err != nil {
			return nil, err
		}
		t.AddRow(n, commits, dScratch, dInc,
			fmt.Sprintf("%.2fx", float64(dScratch)/float64(dInc)))
	}
	return t, nil
}

// e20SmokeRows is the BENCH artifact's record of the incremental
// speedup: the same commit+read stream scratch vs incremental, one
// commit+read cycle per op.
func e20SmokeRows() ([]smokeResult, error) {
	const n, commits = 192, 16
	var rows []smokeResult
	for _, incremental := range []bool{false, true} {
		d, err := e20Cycle(n, commits, incremental)
		if err != nil {
			return nil, err
		}
		name := "E20_ivm_chain192_scratch"
		if incremental {
			name = "E20_ivm_chain192_incremental"
		}
		rows = append(rows, smokeResult{
			Name: name, Tracer: "off", Workers: 1, Shards: 1,
			Iters: commits, NsPerOp: d.Nanoseconds() / commits,
		})
	}
	return rows, nil
}
