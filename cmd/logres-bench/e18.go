package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"logres"
	"logres/internal/bench"
)

// E18 — WAL fsync policy cost. The E15 disjoint-module workload runs
// over a durable database (snapshot + write-ahead log in a throwaway
// directory) under each fsync policy, against the in-memory database
// as the zero-durability baseline. FsyncAlways pays one fsync per
// commit — the full durability guarantee — while FsyncInterval
// coalesces syncs into a window and FsyncOff leaves flushing to the
// OS, so the three rows bound what crash-safety costs per module
// application.

// e18Durable applies total modules over a fresh durable database:
// serially for workers == 1, else from workers goroutines through the
// optimistic path on disjoint predicates (the E15 "disjoint" shape, so
// every commit takes the WAL delta fast path).
func e18Durable(total, workers int, fsync logres.FsyncPolicy) (time.Duration, error) {
	dir, err := os.MkdirTemp("", "logres-e18-*")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	db, _, err := logres.OpenDurable(e15Schema(), logres.Durability{Dir: dir, Fsync: fsync})
	if err != nil {
		return 0, err
	}
	defer db.Close()

	start := time.Now()
	if workers <= 1 {
		for i := 0; i < total; i++ {
			if _, err := db.Exec(e15Module(fmt.Sprintf("q%d", i%e15Preds), i)); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	per := total / workers
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			own := fmt.Sprintf("q%d", g%e15Preds)
			for i := 0; i < per; i++ {
				if _, err := db.ExecConcurrent(e15Module(own, g*per+i)); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errs)
	for err := range errs {
		return 0, err
	}
	return elapsed, nil
}

var e18Policies = []logres.FsyncPolicy{logres.FsyncOff, logres.FsyncInterval, logres.FsyncAlways}

func runE18(quick bool) (*bench.Table, error) {
	t := &bench.Table{
		Title:   "E18 — WAL fsync policy cost (disjoint module applications)",
		Columns: []string{"workload", "fsync", "workers", "modules", "time", "mod/s", "slowdown"},
	}
	total := 192
	if quick {
		total = 48
	}

	dMem, err := e15Serial(total)
	if err != nil {
		return nil, err
	}
	t.AddRow("in-memory", "-", 1, total, dMem, modsPerSec(total, dMem), 1.0)

	for _, workers := range []int{1, 4} {
		for _, p := range e18Policies {
			d, err := e18Durable(total, workers, p)
			if err != nil {
				return nil, err
			}
			t.AddRow("durable", p.String(), workers, total,
				d, modsPerSec(total, d), float64(d)/float64(dMem))
		}
	}
	return t, nil
}
