module logres

go 1.22
