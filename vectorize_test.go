package logres

import (
	"fmt"
	"strings"
	"testing"
)

// Top-level differential property: the persisted database — Save's
// exact byte stream — must be identical whether evaluation ran on the
// row engine or the columnar engine, for every workers × shards
// combination. This is the end-to-end counterpart of the engine-level
// matrix test (internal/engine/vector_test.go): it covers parsing,
// module application, storage, and serialization on top of evaluation.

const vecMatrixSchema = `
associations
  EDGE = (src: integer, dst: integer);
  TC = (src: integer, dst: integer);
  SAME = (a: integer, b: integer);
`

const vecMatrixModule = `
mode ridv.
rules
  tc(src: X, dst: Y) <- edge(src: X, dst: Y).
  tc(src: X, dst: Z) <- tc(src: X, dst: Y), edge(src: Y, dst: Z).
  same(a: X, b: Y) <- edge(src: X, dst: Y), not tc(src: Y, dst: X).
end.
`

func vecMatrixEdges() string {
	var sb strings.Builder
	sb.WriteString("mode ridv.\nrules\n")
	for i := 0; i < 24; i++ {
		fmt.Fprintf(&sb, "  edge(src: %d, dst: %d).\n", i, i+1)
	}
	// A back edge so the negation in SAME has both outcomes.
	sb.WriteString("  edge(src: 24, dst: 0).\nend.\n")
	return sb.String()
}

func vecMatrixSave(t *testing.T, workers, shards int, vectorize bool) string {
	t.Helper()
	db, err := Open(vecMatrixSchema,
		WithWorkers(workers), WithShards(shards), WithVectorize(vectorize))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(vecMatrixEdges()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(vecMatrixModule); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := db.Save(&sb2{&sb}); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestVectorizedSaveBytesMatrix(t *testing.T) {
	oracle := vecMatrixSave(t, 1, 1, false)
	if !strings.Contains(oracle, "tc") {
		t.Fatal("oracle run derived nothing")
	}
	for _, workers := range []int{1, 4} {
		for _, shards := range []int{1, 4} {
			for _, vec := range []bool{false, true} {
				got := vecMatrixSave(t, workers, shards, vec)
				if got != oracle {
					t.Fatalf("workers=%d shards=%d vectorize=%v: Save bytes diverge from row serial",
						workers, shards, vec)
				}
			}
		}
	}
}
