package logres

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"logres/internal/hooks"
	"logres/internal/storage"
)

// Crash-matrix coverage for incremental maintenance state: the
// maintainer is derived state, rebuilt by recomputation at recovery, so
// killing a durable incremental database at any storage syscall
// boundary and reopening it must leave (1) the recovered Save bytes
// equal to a plain (non-incremental) recovery of the same directory,
// (2) the maintained instance byte-identical to a cold from-scratch
// recomputation of the recovered state, and (3) propagation working for
// commits applied after recovery.

const ivmCrashSchema = `
associations
  EDGE = (src: integer, dst: integer);
  TC = (src: integer, dst: integer);
`

const ivmCrashRules = `
mode radv.
rules
  tc(src: X, dst: Y) <- edge(src: X, dst: Y).
  tc(src: X, dst: Z) <- tc(src: X, dst: Y), edge(src: Y, dst: Z).
end.
`

// runIVMCrashWorkload seeds a durable incremental database and commits
// a short insert/delete workload; any step may be aborted by an
// injected storage fault (the simulated kill).
func runIVMCrashWorkload(t *testing.T, dir string) {
	t.Helper()
	db, _, err := OpenDurable(ivmCrashSchema, Durability{Dir: dir}, WithIncremental(true))
	if err != nil {
		return // killed during creation
	}
	defer db.Close()
	if _, err := db.Exec(ivmCrashRules); err != nil {
		return
	}
	for i := 0; i < 4; i++ {
		src := fmt.Sprintf("mode ridv.\nrules\n  edge(src: %d, dst: %d).\nend.\n", i, i+1)
		if _, err := db.ExecConcurrent(src); err != nil {
			return
		}
	}
	if _, err := db.ExecConcurrent("mode rddv.\nrules\n  edge(src: 1, dst: 2).\nend.\n"); err != nil {
		return
	}
}

func TestIncrementalCrashMatrix(t *testing.T) {
	// Pass 1: census of fault-point crossings on a clean run.
	var mu sync.Mutex
	crossings := 0
	hooks.StorageFault = func(string) error {
		mu.Lock()
		crossings++
		mu.Unlock()
		return nil
	}
	runIVMCrashWorkload(t, t.TempDir())
	hooks.StorageFault = nil
	if crossings == 0 {
		t.Fatal("workload crossed no fault points")
	}

	// Pass 2: kill at every crossing and recover with incremental
	// maintenance enabled.
	for k := 0; k < crossings; k++ {
		k := k
		dir := t.TempDir()
		n := 0
		var killed string
		hooks.StorageFault = func(point string) error {
			mu.Lock()
			defer mu.Unlock()
			n++
			if n-1 == k {
				killed = point
				return errors.New("injected crash")
			}
			return nil
		}
		runIVMCrashWorkload(t, dir)
		hooks.StorageFault = nil

		if ok, err := storage.Exists(dir); err != nil || !ok {
			continue // killed before the store materialized
		}

		inc, _, err := OpenDurable(ivmCrashSchema, Durability{Dir: dir}, WithIncremental(true))
		if err != nil {
			t.Fatalf("kill@%d(%s): incremental recovery failed: %v", k, killed, err)
		}
		var incSave bytes.Buffer
		if err := inc.Save(&incSave); err != nil {
			t.Fatal(err)
		}
		maintained, err := inc.InstanceString()
		if err != nil {
			t.Fatalf("kill@%d(%s): maintained instance: %v", k, killed, err)
		}

		// Cold recomputation of the recovered persistent state: load the
		// Save bytes into a fresh non-incremental database and derive
		// from scratch.
		cold, err := Load(bytes.NewReader(incSave.Bytes()))
		if err != nil {
			t.Fatalf("kill@%d(%s): load recovered snapshot: %v", k, killed, err)
		}
		scratch, err := cold.InstanceString()
		if err != nil {
			t.Fatalf("kill@%d(%s): cold recomputation: %v", k, killed, err)
		}
		if maintained != scratch {
			t.Fatalf("kill@%d(%s): recovered maintenance state diverges from cold recomputation", k, killed)
		}

		// Post-recovery propagation: one more insert and one delete must
		// keep the maintained instance identical to scratch.
		for _, src := range []string{
			"mode ridv.\nrules\n  edge(src: 7, dst: 8).\n  edge(src: 8, dst: 9).\nend.\n",
			"mode rddv.\nrules\n  edge(src: 8, dst: 9).\nend.\n",
		} {
			if _, err := inc.ExecConcurrent(src); err != nil {
				t.Fatalf("kill@%d(%s): post-recovery commit: %v", k, killed, err)
			}
			if _, err := cold.Exec(src); err != nil {
				t.Fatalf("kill@%d(%s): oracle commit: %v", k, killed, err)
			}
			got, err := inc.InstanceString()
			if err != nil {
				t.Fatal(err)
			}
			want, err := cold.InstanceString()
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("kill@%d(%s): post-recovery propagation diverges from scratch", k, killed)
			}
		}
		inc.Close()
	}
}
